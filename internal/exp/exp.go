// Package exp is the experiment harness: one runner per table/figure of
// the paper's evaluation (plus the ablations DESIGN.md calls out), each
// regenerating the same rows/series the paper reports. The cmd/morpheusbench
// binary and the repository's testing.B benchmarks are thin wrappers over
// this package.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"morpheus/internal/apps"
	"morpheus/internal/core"
	"morpheus/internal/flash"
	"morpheus/internal/mvm"
	"morpheus/internal/sim"
	"morpheus/internal/stats"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the Table I input sizes (1.0 = paper size). The
	// simulation is analytic in input size, so shapes are scale-stable;
	// the default keeps bench runtimes pleasant.
	Scale float64
	// Seed drives the deterministic workload generators.
	Seed int64
	// CPUFreq overrides the host DVFS point (0 = default 2.5 GHz).
	CPUFreq units.Frequency
	// Mutate, if set, adjusts the system configuration before building.
	Mutate func(*core.SystemConfig)
	// Faults, when nonzero, installs a deterministic media fault model on
	// the flash array after staging (so setup writes are unaffected but
	// measured reads see the faults).
	Faults flash.FaultModel
	// Trace, when set, is attached to every system the experiment builds
	// (after staging, so setup I/O does not pollute it) and collects causal
	// spans across all runs.
	Trace *trace.Tracer
	// Metrics, when set, aggregates every run's counters, latency
	// histograms, and gauges across the experiment.
	Metrics *stats.Registry
	// MetricsWindow, when positive, enables windowed time-series
	// collection on every system the experiment builds: counters,
	// latency quantiles, and gauges are bucketed into fixed windows of
	// this width on the virtual clock. The aggregate Metrics registry
	// adopts the same window through the fold, so the artifact is
	// byte-identical at any Parallel setting. Zero keeps the default
	// whole-run aggregation (and the default artifact schema).
	MetricsWindow units.Duration
	// SLOs declares latency objectives tracked per window against the
	// named metric. A config's Name binds it to one tenant (application
	// name, as in the multiprogrammed experiment); "" or "*" applies to
	// every run under the name "all".
	SLOs []stats.SLOConfig
	// Parallel is the worker count for independent sweep points: 0 uses
	// one worker per CPU, 1 forces the sequential loop. Output (tables,
	// Metrics, Trace) is byte-identical at every setting; see parallel.go.
	Parallel int
	// ShardParallel, when positive, runs each array point's shards through
	// the conservative-window executor (array.RunTrafficParallel) with up
	// to this many concurrent shard goroutines; 0 keeps the inline
	// sequential serving loop. Points and shard goroutines draw from one
	// shared worker budget sized max(workers, ShardParallel), so the two
	// layers of parallelism never oversubscribe the machine together.
	// Output is byte-identical at every positive setting; see
	// internal/array/parallel.go for the determinism argument.
	ShardParallel int
	// budget is the experiment-wide worker semaphore runPoints lazily
	// creates; tests inject one to pin the cap.
	budget *sim.WorkerBudget
	// MVMEngine selects the embedded-core execution engine (default: the
	// closure-compiled engine). Both engines are bit-identical in every
	// simulated result — tables, metrics, traces — so this only changes
	// host wall-clock.
	MVMEngine mvm.EngineKind
	// SimEngine selects the discrete-event scheduler implementation
	// (default: the hierarchical time wheel; sim.EngineHeap is the
	// reference oracle). As with MVMEngine, both are byte-identical in
	// every simulated result.
	SimEngine sim.EngineKind
}

// observe wires the experiment-wide tracer into a freshly staged system.
// Call it after staging/ResetTimers so the trace starts at the
// measurement boundary.
func (o Options) observe(sys *core.System) {
	if o.Trace != nil {
		sys.AttachTracer(o.Trace)
	}
}

// collect folds one finished run's metrics into the experiment aggregate.
func (o Options) collect(sys *core.System) {
	if o.Metrics != nil {
		o.Metrics.Merge(sys.Metrics)
	}
}

// DefaultOptions is the bench-friendly configuration.
func DefaultOptions() Options {
	return Options{Scale: 1.0 / 256, Seed: 20160618} // ISCA'16 conference date
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0 / 256
	}
	return o.Scale
}

// buildSystem constructs a fresh testbed for one run.
func buildSystem(o Options, withGPU bool) (*core.System, error) {
	cfg := core.DefaultSystemConfig()
	cfg.WithGPU = withGPU
	if o.Mutate != nil {
		o.Mutate(&cfg)
	}
	if o.MVMEngine != mvm.EngineDefault {
		cfg.SSD.VM.Engine = o.MVMEngine
	}
	cfg.SimEngine = o.SimEngine
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if o.CPUFreq > 0 {
		sys.Host.SetFrequency(o.CPUFreq)
	}
	if o.MetricsWindow > 0 {
		sys.Metrics.EnableSeries(int64(o.MetricsWindow))
	}
	for _, c := range o.SLOs {
		if c.Name == "" || c.Name == "*" {
			c.Name = "all"
		}
		sys.Metrics.AddSLO(c)
	}
	return sys, nil
}

// TenantID returns the globally unique tenant name for an application
// instance running on one shard of an array ("grep@s2"). A bare
// application name remains the valid tenant of a single-system run.
func TenantID(app string, shard int) string { return fmt.Sprintf("%s@s%d", app, shard) }

// tenantBase strips the shard qualifier from a tenant name ("grep@s2" →
// "grep"); unqualified names pass through.
func tenantBase(tenant string) string {
	if i := strings.IndexByte(tenant, '@'); i >= 0 {
		return tenant[:i]
	}
	return tenant
}

// bindSLOs narrows the option set to the SLO configs that apply to one
// named tenant: configs naming that tenant plus the wildcards ("", "*").
// Experiments that run one application per system call this so a
// tenant-scoped objective only counts its own tenant's commands.
//
// Tenants may be shard-qualified (TenantID): a config naming the bare
// application binds to each shard-qualified instance separately, and its
// Name is rewritten to the qualified tenant. The rewrite is what keeps
// SLO keys unique across shards — without it, the same app running on
// two shards would fold both instances' counts under one "app|metric"
// key in the merged registry, colliding and double-counting the burn.
func bindSLOs(o Options, tenant string) Options {
	if len(o.SLOs) == 0 {
		return o
	}
	base := tenantBase(tenant)
	var kept []stats.SLOConfig
	for _, c := range o.SLOs {
		switch c.Name {
		case "", "*", tenant:
			kept = append(kept, c)
		case base:
			c.Name = tenant
			kept = append(kept, c)
		}
	}
	o.SLOs = kept
	return o
}

// runApp stages and executes one application in one mode on a fresh
// system, returning the report and the system (for counter inspection).
func runApp(app *apps.App, mode apps.Mode, o Options) (*apps.Report, *core.System, error) {
	o = bindSLOs(o, app.Name)
	sys, err := buildSystem(o, app.UsesGPU)
	if err != nil {
		return nil, nil, err
	}
	files, _, err := apps.Stage(sys, app, o.scale(), o.Seed)
	if err != nil {
		return nil, nil, err
	}
	if o.Faults != (flash.FaultModel{}) {
		sys.SSD.Flash.SetFaultModel(o.Faults)
	}
	sys.ResetTimers()
	o.observe(sys)
	rep, err := apps.Run(sys, app, files, mode)
	if err != nil {
		return nil, nil, err
	}
	o.collect(sys)
	return rep, sys, nil
}

// Table is a simple aligned text table used by every experiment printer.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first; notes
// become trailing comment lines) for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				io.WriteString(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			io.WriteString(w, c)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// geoMean returns the geometric mean of xs (0 for empty).
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
