// Package gpu models the discrete accelerator of the testbed: an NVIDIA
// K20-class card (2496 CUDA cores, 5 GB GDDR5) attached to the PCIe fabric
// over an x16 link. Only the behaviours the evaluation observes are
// modeled: device-memory capacity, host<->device and peer<->device copy
// time, BAR exposure for GPUDirect-style peer access, and a kernel cost
// model parameterized per benchmark application.
package gpu

import (
	"fmt"

	"morpheus/internal/pcie"
	"morpheus/internal/sim"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// Config describes the accelerator.
type Config struct {
	Name       string
	CUDACores  int
	CoreClock  units.Frequency
	MemSize    units.Bytes
	MemBW      units.Bandwidth // GDDR5 device-memory bandwidth
	LinkBW     units.Bandwidth // PCIe link, per direction
	LaunchCost units.Duration  // kernel-launch overhead
	CopySetup  units.Duration  // cudaMemcpy setup overhead
	// StagingBW limits host-to-device copies from pageable memory (the
	// driver stages through a pinned bounce buffer; ~3 GB/s on the
	// paper-era platforms). Zero disables the staging model.
	StagingBW    units.Bandwidth
	BARSupported bool // DirectGMA / GPUDirect capability
}

// DefaultConfig matches the paper's K20.
func DefaultConfig() Config {
	return Config{
		Name:         "K20",
		CUDACores:    2496,
		CoreClock:    706 * units.MHz,
		MemSize:      5 * units.GiB,
		MemBW:        208 * units.GBps,
		LinkBW:       pcie.Gen3x16,
		LaunchCost:   8 * units.Microsecond,
		CopySetup:    10 * units.Microsecond,
		StagingBW:    3 * units.GBps,
		BARSupported: true,
	}
}

// EndpointName is the GPU's name on the PCIe fabric.
const EndpointName = "gpu"

// BARBase is where the GPU device-memory BAR is mapped when peer access is
// enabled.
const BARBase pcie.Addr = 0x80_0000_0000

// GPU is the simulated accelerator.
type GPU struct {
	cfg    Config
	fabric *pcie.Fabric
	devMem *sim.Pipe // device-memory bandwidth behind the BAR
	sms    *sim.Resource

	barWindow *pcie.Window
	allocNext pcie.Addr
	allocated units.Bytes

	kernelsLaunched int64
	kernelTime      units.Duration

	tracer *trace.Tracer
}

// SetTracer attaches an event tracer (nil to disable).
func (g *GPU) SetTracer(t *trace.Tracer) { g.tracer = t }

// New attaches a GPU to the fabric.
func New(cfg Config, fabric *pcie.Fabric) *GPU {
	g := &GPU{
		cfg:    cfg,
		fabric: fabric,
		devMem: sim.NewPipe("gpu.devmem", 0, cfg.MemBW),
		sms:    sim.NewResource("gpu.sms"),
	}
	fabric.Attach(EndpointName, cfg.LinkBW, 300*units.Nanosecond)
	return g
}

// Config returns the GPU configuration.
func (g *GPU) Config() Config { return g.cfg }

// EnablePeerBAR programs the device memory into the PCIe switch via the
// base address registers, as AMD DirectGMA / NVIDIA GPUDirect do. This is
// the GPU half of NVMe-P2P (§IV-C). It is idempotent.
func (g *GPU) EnablePeerBAR() error {
	if !g.cfg.BARSupported {
		return fmt.Errorf("gpu: %s does not support peer BAR mapping", g.cfg.Name)
	}
	if g.barWindow != nil {
		return nil
	}
	w, err := g.fabric.MapWindow(pcie.Window{
		Name:     "gpu-bar",
		Base:     BARBase,
		Size:     uint64(g.cfg.MemSize),
		Endpoint: EndpointName,
		Sink:     pcie.SinkFunc(g.deliverDevMem),
	})
	if err != nil {
		return err
	}
	g.barWindow = w
	if g.allocNext == 0 {
		g.allocNext = BARBase
	}
	return nil
}

// PeerBAREnabled reports whether the BAR window is currently mapped.
func (g *GPU) PeerBAREnabled() bool { return g.barWindow != nil }

// DisablePeerBAR removes the BAR window.
func (g *GPU) DisablePeerBAR() {
	if g.barWindow != nil {
		g.fabric.UnmapWindow("gpu-bar")
		g.barWindow = nil
	}
}

func (g *GPU) deliverDevMem(ready units.Time, n units.Bytes) units.Time {
	_, end := g.devMem.Transfer(ready, n)
	return end
}

// Alloc reserves device memory and returns its BAR-relative address (the
// address is meaningful on the fabric only while the BAR is mapped, but
// allocation itself does not require peer access).
func (g *GPU) Alloc(size units.Bytes) (pcie.Addr, error) {
	if g.allocated+size > g.cfg.MemSize {
		return 0, fmt.Errorf("gpu: out of device memory (%v of %v used)", g.allocated, g.cfg.MemSize)
	}
	if g.allocNext == 0 {
		g.allocNext = BARBase
	}
	a := g.allocNext
	g.allocNext += pcie.Addr(size)
	g.allocated += size
	return a, nil
}

// FreeAll resets the device-memory allocator between runs.
func (g *GPU) FreeAll() {
	g.allocNext = BARBase
	g.allocated = 0
}

// CopyHostToDevice models cudaMemcpyHostToDevice of n bytes starting from
// host DRAM: host memory read, host upstream link, GPU downstream link,
// device-memory write.
func (g *GPU) CopyHostToDevice(ready units.Time, src pcie.Addr, n units.Bytes) (units.Time, error) {
	ready = ready.Add(g.cfg.CopySetup)
	if g.cfg.StagingBW > 0 {
		// Pageable source: the driver memcpys through a pinned bounce
		// buffer before the DMA can start.
		ready = ready.Add(g.cfg.StagingBW.TimeFor(n))
	}
	return g.fabric.ReadFrom(ready, EndpointName, src, n)
}

// CopyDeviceToHost models cudaMemcpyDeviceToHost.
func (g *GPU) CopyDeviceToHost(ready units.Time, dst pcie.Addr, n units.Bytes) (units.Time, error) {
	ready = ready.Add(g.cfg.CopySetup)
	_, t := g.devMem.Transfer(ready, n)
	return g.fabric.WriteTo(t, EndpointName, dst, n)
}

// KernelSpec is the analytic cost of one kernel invocation: a fixed
// per-element instruction count executed across the CUDA cores, bounded by
// device-memory bandwidth.
type KernelSpec struct {
	Name            string
	InstrPerElement float64 // dynamic instructions per data element
	BytesPerElement units.Bytes
	Elements        int64
	// Efficiency is the achieved fraction of peak ALU throughput
	// (divergence, occupancy limits).
	Efficiency float64
}

// RunKernel executes a kernel, occupying the SMs, and returns the
// completion time.
func (g *GPU) RunKernel(ready units.Time, spec KernelSpec) units.Time {
	eff := spec.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 0.5
	}
	peakIPS := float64(g.cfg.CUDACores) * float64(g.cfg.CoreClock) * eff
	computeTime := units.DurationOf(spec.InstrPerElement * float64(spec.Elements) / peakIPS)
	memTime := g.cfg.MemBW.TimeFor(units.Bytes(spec.Elements) * spec.BytesPerElement)
	d := computeTime
	if memTime > d {
		d = memTime
	}
	d += g.cfg.LaunchCost
	start, end := g.sms.Acquire(ready, d)
	g.kernelsLaunched++
	g.kernelTime += d
	if g.tracer != nil {
		g.tracer.RecordSpan("gpu.sms", "kernel",
			fmt.Sprintf("%s elements=%d", spec.Name, spec.Elements),
			g.tracer.NextSpan(), 0, start, end)
	}
	return end
}

// KernelStats reports launches and cumulative kernel time.
func (g *GPU) KernelStats() (launches int64, busy units.Duration) {
	return g.kernelsLaunched, g.kernelTime
}

// ResetTimers clears device timing state and kernel statistics while
// preserving allocations and the BAR mapping — the GPU's part of the
// setup/measurement boundary.
func (g *GPU) ResetTimers() {
	g.devMem.Reset()
	g.sms.Reset()
	g.kernelsLaunched = 0
	g.kernelTime = 0
}
