package gpu

import (
	"testing"

	"morpheus/internal/pcie"
	"morpheus/internal/stats"
	"morpheus/internal/units"
)

func newGPU(t *testing.T) (*GPU, *pcie.Fabric, *stats.Set) {
	t.Helper()
	counters := stats.NewSet()
	fabric := pcie.NewFabric(counters, "host")
	fabric.Attach("host", pcie.Gen3x16, 0)
	fabric.MapWindow(pcie.Window{Name: "dram", Base: 0, Size: 1 << 32, Endpoint: "host", Sink: pcie.NullSink})
	return New(DefaultConfig(), fabric), fabric, counters
}

func TestAllocAndCapacity(t *testing.T) {
	g, _, _ := newGPU(t)
	a1, err := g.Alloc(1 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g.Alloc(1 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("allocations must not alias")
	}
	if _, err := g.Alloc(4 * units.GiB); err == nil {
		t.Fatal("over-allocation must fail (5 GiB card)")
	}
	g.FreeAll()
	if _, err := g.Alloc(4 * units.GiB); err != nil {
		t.Fatalf("after FreeAll: %v", err)
	}
}

func TestPeerBARLifecycle(t *testing.T) {
	g, fabric, _ := newGPU(t)
	if g.PeerBAREnabled() {
		t.Fatal("BAR must start unmapped")
	}
	if err := g.EnablePeerBAR(); err != nil {
		t.Fatal(err)
	}
	if err := g.EnablePeerBAR(); err != nil {
		t.Fatalf("enable must be idempotent: %v", err)
	}
	if _, err := fabric.Resolve(BARBase + 10); err != nil {
		t.Fatal("BAR window must resolve after enable")
	}
	g.DisablePeerBAR()
	if _, err := fabric.Resolve(BARBase + 10); err == nil {
		t.Fatal("BAR window must vanish after disable")
	}
}

func TestBARUnsupported(t *testing.T) {
	counters := stats.NewSet()
	fabric := pcie.NewFabric(counters, "host")
	cfg := DefaultConfig()
	cfg.BARSupported = false
	g := New(cfg, fabric)
	if err := g.EnablePeerBAR(); err == nil {
		t.Fatal("BAR-incapable card must refuse peer mapping")
	}
}

func TestCopyTiming(t *testing.T) {
	g, _, _ := newGPU(t)
	n := 64 * units.MiB
	end, err := g.CopyHostToDevice(0, 0x1000, n)
	if err != nil {
		t.Fatal(err)
	}
	// Staging at 3 GB/s dominates: 64 MiB ≈ 22 ms.
	min := g.Config().StagingBW.TimeFor(n)
	if units.Duration(end) < min {
		t.Fatalf("H2D %v faster than the staging bound %v", end, min)
	}
	end2, err := g.CopyDeviceToHost(0, 0x1000, n)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= 0 {
		t.Fatal("D2H must take time")
	}
}

func TestKernelComputeVsMemoryBound(t *testing.T) {
	g, _, _ := newGPU(t)
	// Compute-bound: many instructions per element.
	e1 := g.RunKernel(0, KernelSpec{InstrPerElement: 1e4, BytesPerElement: 4, Elements: 1e6, Efficiency: 0.5})
	// Memory-bound: one instruction per element, huge data.
	e2 := g.RunKernel(e1, KernelSpec{InstrPerElement: 1, BytesPerElement: 4, Elements: 1e6, Efficiency: 0.5})
	d1 := units.Duration(e1)
	d2 := units.Duration(e2 - e1)
	if d1 <= d2 {
		t.Fatalf("compute-bound kernel (%v) should dominate memory-bound (%v)", d1, d2)
	}
	memFloor := g.Config().MemBW.TimeFor(4e6)
	if d2 < memFloor {
		t.Fatalf("memory-bound kernel %v under the bandwidth floor %v", d2, memFloor)
	}
	launches, busy := g.KernelStats()
	if launches != 2 || busy <= 0 {
		t.Fatalf("stats = %d %v", launches, busy)
	}
}

func TestKernelsSerializeOnSMs(t *testing.T) {
	g, _, _ := newGPU(t)
	spec := KernelSpec{InstrPerElement: 1e3, BytesPerElement: 4, Elements: 1e6, Efficiency: 0.5}
	e1 := g.RunKernel(0, spec)
	e2 := g.RunKernel(0, spec) // same ready time: must queue
	if e2 <= e1 {
		t.Fatalf("second kernel must wait for the SMs: %v vs %v", e2, e1)
	}
}
