package array

import (
	"bytes"
	"reflect"
	"testing"

	"morpheus/internal/apps"
	"morpheus/internal/core"
	"morpheus/internal/sim"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// buildKind is testBuild with a selectable event engine.
func buildKind(kind sim.EngineKind) func(int) (*core.System, error) {
	return func(int) (*core.System, error) {
		cfg := core.DefaultSystemConfig()
		cfg.WithGPU = false
		cfg.SSD.MDTS = 8 * units.KiB
		cfg.SimEngine = kind
		return core.NewSystem(cfg)
	}
}

// parFleet builds a staged fleet on the chosen engine.
func parFleet(t *testing.T, kind sim.EngineKind, shards, replicas, objects int) (*Array, *apps.App) {
	t.Helper()
	a, err := New(Config{Shards: shards, Replicas: replicas}, buildKind(kind))
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.ByName("grep")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		data := app.Gen(16*units.KiB, 1, 1000+int64(i))
		if err := a.StageObject(ObjectName(i), data[0]); err != nil {
			t.Fatal(err)
		}
	}
	a.ResetTimers()
	return a, app
}

// windowTraffic spans several conservative windows: 60 arrivals at a
// 200 µs mean cover ~12 ms of virtual time against the ~3 ms lookahead
// window, so degraded-mode re-fetches are forced across window
// boundaries rather than all landing inside the first one.
func windowTraffic(app *apps.App, objects int, seed int64) TrafficConfig {
	return TrafficConfig{
		Tenants:  48,
		Requests: 60,
		Objects:  objects,
		Mean:     200 * units.Microsecond,
		Mix:      MixPoisson,
		Seed:     seed,
		App:      app.StorageApp(),
		Parser:   app.HostParser,
		Spec:     app.Spec,
	}
}

// parArtifacts is everything one windowed run emits that the
// byte-identity contract covers.
type parArtifacts struct {
	res     *TrafficResult
	metrics []byte // per-shard registries, concatenated in shard order
	events  []trace.Event
}

func fleetMetricsJSON(t *testing.T, a *Array) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, sh := range a.Shards {
		if err := sh.Sys.Metrics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runWindowed builds a fresh fleet, optionally kills the busiest
// primary, and runs the conservative-window executor at the given slot
// count with a tracer attached.
func runWindowed(t *testing.T, kind sim.EngineKind, slots int, kill bool, seed int64) parArtifacts {
	t.Helper()
	const objects = 8
	a, app := parFleet(t, kind, 4, 2, objects)
	tr := trace.New(0)
	a.AttachTracer(tr)
	if kill {
		// The busiest primary, like the E17 loss point: the shard whose
		// loss degrades the most traffic.
		counts := make([]int, len(a.Shards))
		for i := 0; i < objects; i++ {
			counts[a.Place(ObjectName(i))[0]]++
		}
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		a.KillShard(best)
	}
	res, err := RunTrafficParallel(a, windowTraffic(app, objects, seed), slots)
	if err != nil {
		t.Fatal(err)
	}
	return parArtifacts{res: res, metrics: fleetMetricsJSON(t, a), events: tr.Events()}
}

func diffArtifacts(t *testing.T, label string, want, got parArtifacts) {
	t.Helper()
	if !reflect.DeepEqual(want.res, got.res) {
		t.Errorf("%s: traffic result diverged:\n%+v\nvs\n%+v", label, want.res, got.res)
	}
	if !bytes.Equal(want.metrics, got.metrics) {
		t.Errorf("%s: fleet metrics JSON diverged (%d vs %d bytes)", label, len(want.metrics), len(got.metrics))
	}
	if !reflect.DeepEqual(want.events, got.events) {
		t.Errorf("%s: trace diverged: %d vs %d events", label, len(want.events), len(got.events))
	}
}

// TestLookaheadPositive pins the windowing precondition: the retry
// backoff budget that funds the conservative window is provably nonzero
// (3 ms under the default policy: 1 ms + 2 ms before the final attempt).
func TestLookaheadPositive(t *testing.T) {
	if l := ReplicaLookahead(); l != 3*units.Millisecond {
		t.Fatalf("ReplicaLookahead = %v, want 3ms from the default retry policy", l)
	}
}

// TestParallelTrafficMatchesInlineWhenHealthy: with no degraded-mode
// traffic there are no cross-shard edges at all, and the windowed
// executor must reproduce the inline path's results and per-shard
// metrics exactly — the protocols only diverge on contended re-fetch
// ordering, never on independent serving.
func TestParallelTrafficMatchesInlineWhenHealthy(t *testing.T) {
	const objects = 8
	a, app := parFleet(t, sim.EngineWheel, 4, 2, objects)
	inline, err := RunTraffic(a, windowTraffic(app, objects, 7))
	if err != nil {
		t.Fatal(err)
	}
	inlineJSON := fleetMetricsJSON(t, a)

	b, _ := parFleet(t, sim.EngineWheel, 4, 2, objects)
	windowed, err := RunTrafficParallel(b, windowTraffic(app, objects, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The windowed run carries protocol accounting the inline path never
	// populates; with no degraded traffic nothing may have parked.
	if windowed.Windows == 0 || windowed.Rounds == 0 {
		t.Fatalf("windowed run recorded no protocol activity: %d windows, %d rounds", windowed.Windows, windowed.Rounds)
	}
	if windowed.DeferredFetches != 0 || windowed.EarlyFetches != 0 {
		t.Fatalf("healthy run deferred %d fetches (%d early); there are no cross-shard edges to defer",
			windowed.DeferredFetches, windowed.EarlyFetches)
	}
	scrubbed := *windowed
	scrubbed.Windows, scrubbed.Rounds = 0, 0
	if !reflect.DeepEqual(inline, &scrubbed) {
		t.Fatalf("healthy windowed run diverged from inline:\n%+v\nvs\n%+v", inline, windowed)
	}
	if got := fleetMetricsJSON(t, b); !bytes.Equal(inlineJSON, got) {
		t.Fatal("healthy windowed run's shard metrics diverged from inline")
	}
	if windowed.Admitted == 0 {
		t.Fatal("traffic admitted nothing")
	}
}

// TestParallelTrafficByteIdenticalAcrossSlots is the core contract at
// fleet level: the same run at -shard-parallel 1, 4, and 8 — and under
// the reference heap engine — produces identical results, identical
// per-shard metrics JSON, and an identical adopted trace, span IDs
// included. The CI race battery runs this under -race, so the slot>1
// runs also prove the executor free of data races.
func TestParallelTrafficByteIdenticalAcrossSlots(t *testing.T) {
	want := runWindowed(t, sim.EngineWheel, 1, false, 7)
	if want.res.Admitted == 0 {
		t.Fatal("traffic admitted nothing")
	}
	for _, slots := range []int{4, 8} {
		got := runWindowed(t, sim.EngineWheel, slots, false, 7)
		diffArtifacts(t, sim.EngineWheel.String(), want, got)
	}
	heap := runWindowed(t, sim.EngineHeap, 4, false, 7)
	diffArtifacts(t, "wheel-vs-heap", want, heap)
}

// TestKillShardDuringWindow is the loss battery: a whole shard dies
// before traffic, so every request routed to it burns the retry budget
// and parks a replica re-fetch at a window barrier — across multiple
// windows, on both engines, at slot counts 1/4/8, everything must stay
// byte-identical, and the degraded path must actually have been taken.
func TestKillShardDuringWindow(t *testing.T) {
	want := runWindowed(t, sim.EngineWheel, 1, true, 7)
	if got := want.res.Path[core.PathReplicaFallback]; got == 0 {
		t.Fatal("shard loss produced no replica-fallback serves; the battery is vacuous")
	}
	if want.res.DeferredFetches == 0 {
		t.Fatal("no replica fetch parked at a window barrier; the battery is vacuous")
	}
	// The schedule must span multiple conservative windows, or "across a
	// window boundary" is untested.
	if span := want.res.Horizon; span < 2*units.Time(ReplicaLookahead()) {
		t.Fatalf("traffic horizon %v inside two %v windows; widen the schedule", span, ReplicaLookahead())
	}
	for _, kind := range []sim.EngineKind{sim.EngineWheel, sim.EngineHeap} {
		for _, slots := range []int{1, 4, 8} {
			if kind == sim.EngineWheel && slots == 1 {
				continue // the baseline itself
			}
			got := runWindowed(t, kind, slots, true, 7)
			diffArtifacts(t, kind.String(), want, got)
		}
	}
}

// TestParallelTrafficRestoresAndReuses: the executor must leave the
// fleet exactly as it found it — replica routers and tracer restored —
// so a reset fleet reruns (windowed or inline) as if fresh, and a
// killed-shard inline run after a windowed run still routes re-fetches
// through the real shardFetcher rather than a leaked parking fetcher.
func TestParallelTrafficRestoresAndReuses(t *testing.T) {
	const objects = 8
	fresh, app := parFleet(t, sim.EngineWheel, 3, 2, objects)
	want, err := RunTrafficParallel(fresh, windowTraffic(app, objects, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := fleetMetricsJSON(t, fresh)

	reused, _ := parFleet(t, sim.EngineWheel, 3, 2, objects)
	if _, err := RunTrafficParallel(reused, windowTraffic(app, objects, 11), 4); err != nil {
		t.Fatal(err)
	}
	reused.ResetTimers()
	got, err := RunTrafficParallel(reused, windowTraffic(app, objects, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused fleet diverged from fresh fleet:\n%+v\nvs\n%+v", want, got)
	}
	if gotJSON := fleetMetricsJSON(t, reused); !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("reused fleet metrics differ from a fresh fleet's")
	}

	// Inline degraded mode still works after a windowed run: the real
	// replica router was restored.
	reused.ResetTimers()
	name := ObjectName(0)
	primary := reused.Place(name)[0]
	reused.KillShard(primary)
	sh := reused.Shards[primary]
	f, err := sh.Sys.OpenFile(name)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := sh.Sys.InvokeStorageApp(0, core.InvokeOptions{
		App:  app.StorageApp(),
		File: f,
		Fallback: &core.Fallback{Parser: app.HostParser, Spec: app.Spec},
	})
	if err != nil {
		t.Fatalf("inline degraded request after a windowed run failed: %v", err)
	}
	if inv.Path != core.PathReplicaFallback {
		t.Fatalf("served via %v, want %v", inv.Path, core.PathReplicaFallback)
	}
}
