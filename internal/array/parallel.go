// Conservative-window parallel shard execution (DESIGN.md §7). A fleet
// point steps N independent core.Systems; the only cross-shard causality
// edge is the degraded-mode replica re-fetch (core.ReplicaFetcher), and
// that edge carries a provable nonzero lookahead: a retryable media
// failure burns the full retry backoff budget on the virtual clock —
// on top of the PCIe SQE/doorbell and NVMe processing latency of the
// attempts — before the runtime falls back and asks another shard for
// the bytes. RunTrafficParallel exploits exactly that gap: each shard
// runs on its own goroutine and the fleet advances in windows one
// lookahead wide, with every re-fetch deferred to a sequenced exchange
// phase at the window barrier.
//
// The determinism argument:
//
//   - The request schedule (arrival times, tenant picks, object names,
//     primary routing) is a pure function of the TrafficConfig and the
//     fleet layout, materialized before any shard moves (buildSchedule).
//   - Within a window, shards touch only their own System — schedules
//     are partitioned by primary, placement is pre-warmed, and the
//     deferring fetcher turns the one cross-shard call into a parked
//     request — so per-shard execution is single-threaded and identical
//     at any worker-slot count and under either sim engine.
//   - Deferred fetches execute in the barrier's serial exchange phase,
//     single-threaded, sorted by global request sequence, against
//     holder systems that have quiesced at the same barrier. Delivery
//     order is therefore a protocol constant — independent of which
//     goroutine arrived last, of GOMAXPROCS, and of the engine kind.
//   - Per-shard results, registries, and child tracers fold back in
//     shard order, the same grouping every run uses.
//
// Together: tables, metrics JSON, windowed series, SLO burn, and traces
// are byte-identical across -shard-parallel 1/4/8/any. The inline
// sequential path (RunTraffic) interleaves shards in global arrival
// order with re-fetches served mid-window, so its contended-case bytes
// are a different — equally valid, equally deterministic — serving
// order; -shard-parallel 0 keeps it.
package array

import (
	"sort"
	"sync"

	"morpheus/internal/core"
	"morpheus/internal/sim"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// ReplicaLookahead is the provable minimum virtual-time distance between
// a request's submission and the earliest instant its replica re-fetch
// can reach another shard: the traffic path serves requests under
// core.DefaultRetryPolicy, and a retryable device failure charges every
// backoff of that policy on the virtual clock before the host fallback
// path runs and fetches the replica. The window width of
// RunTrafficParallel equals this bound, so any fetch parked inside a
// window is provably ready at or past the window's end — checked at
// runtime, since a non-retryable failure (an immediate-fallback
// shortcut) would void the derivation.
func ReplicaLookahead() units.Duration {
	return core.DefaultRetryPolicy().BackoffBudget()
}

// execShard is one shard's private executor state. Everything here is
// touched only by the shard's own goroutine, except the park slot
// (seq/name/ready in, data/done/fok out), which the exchange phase
// reads and writes strictly between barrier arrivals.
type execShard struct {
	id       int
	reqs     []schedReq // this shard's slice of the schedule, seq order
	cursor   int
	inflight []units.Time
	refs     map[string][]byte
	res      *TrafficResult // per-shard partial, merged in shard order
	end      units.Time     // current window barrier

	// Park slot. A shard serves one request at a time, so at most one
	// deferred fetch is outstanding per shard per exchange round.
	parked bool
	seq    int // global sequence of the parking request
	name   string
	ready  units.Time
	data   []byte
	done   units.Time
	fok    bool

	// First hard error (lowest seq, since requests run in seq order).
	failed bool
	errSeq int
	err    error
}

func (es *execShard) fail(seq int, err error) {
	if es.failed {
		return
	}
	es.failed = true
	es.errSeq = seq
	es.err = err
}

// trafficExec coordinates one windowed run.
type trafficExec struct {
	a       *Array
	tc      *TrafficConfig
	classes []Class
	window  units.Duration
	ends    []units.Time // barriers of the non-empty windows, ascending

	rz    *sim.Rendezvous  // one party per shard
	slots *sim.WorkerBudget // bounds shards simulating concurrently

	shards []*execShard
	more   bool // serial-phase verdict: another round in this window

	// Protocol accounting, written only in serial phases; folded into
	// the merged TrafficResult.
	rounds   int
	deferred int
	early    int
}

// parkingFetcher is the ReplicaFetcher installed on every shard for the
// duration of a windowed run: instead of reading the holder inline (a
// cross-shard touch that would race and reorder), it parks the request
// at the barrier and hands the fetch to the exchange phase.
type parkingFetcher struct {
	ex *trafficExec
	es *execShard
}

func (f *parkingFetcher) FetchReplica(ready units.Time, name string) ([]byte, units.Time, bool) {
	es, ex := f.es, f.ex
	es.name, es.ready = name, ready
	es.parked = true
	end := es.end
	// Quiesce: give up the CPU slot so another shard can run, join the
	// barrier, and let the last arriver run the exchange.
	ex.slots.Release(1)
	ex.rz.Arrive(func() { ex.exchange(end) })
	ex.slots.Acquire()
	return es.data, es.done, es.fok
}

// exchange is the barrier's serial phase: every shard has either
// finished its window or parked on a fetch, so the coordinator-of-the-
// round executes all parked fetches single-threaded against the (now
// quiesced) holder systems, sorted by global request sequence — the
// ordering that makes delivery engine- and scheduling-independent.
func (ex *trafficExec) exchange(end units.Time) {
	var parked []*execShard
	for _, es := range ex.shards {
		if es.parked {
			parked = append(parked, es)
		}
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].seq < parked[j].seq })
	for _, es := range parked {
		es.parked = false
		if es.ready < end {
			// The backoff-budget bound covers the retryable path; a
			// non-retryable shortcut (e.g. the LBA retired after the first
			// uncorrectable read turns the retry terminal) surfaces its
			// fetch in under one lookahead. Delivery order and the
			// holder's interval ledgers do not care — a sparse acquire at
			// a past ready is the same mechanism the inline path uses when
			// the holder's clock runs ahead — so this is accounting, not
			// an error.
			ex.early++
		}
		f := shardFetcher{a: ex.a, self: es.id}
		es.data, es.done, es.fok = f.FetchReplica(es.ready, es.name)
	}
	ex.rounds++
	ex.deferred += len(parked)
	ex.more = len(parked) > 0
}

// runShard advances one shard through every window: serve the window's
// requests (parking inside the fetcher when one goes degraded), settle
// the engine to the barrier, and rendezvous. Rounds repeat within a
// window until an exchange finds nothing parked.
func (ex *trafficExec) runShard(es *execShard) {
	sys := ex.a.Shards[es.id].Sys
	for _, end := range ex.ends {
		es.end = end
		for {
			if !es.failed && es.cursor < len(es.reqs) && es.reqs[es.cursor].at < end {
				ex.slots.Acquire()
				for !es.failed && es.cursor < len(es.reqs) && es.reqs[es.cursor].at < end {
					rq := es.reqs[es.cursor]
					es.seq = rq.seq
					if err := serveOne(ex.a, ex.tc, ex.classes, rq, es.res, &es.inflight, es.refs); err != nil {
						es.fail(rq.seq, err)
						break
					}
					es.cursor++
				}
				if !es.failed {
					// Settle: fire anything the batch left at or before the
					// barrier so the exchange reads a quiesced shard. The
					// drain's cursor contract keeps the clock at the last
					// event, not the barrier.
					sys.Engine.DrainWindow(end)
				}
				ex.slots.Release(1)
			}
			ex.rz.Arrive(func() { ex.exchange(end) })
			if !ex.more {
				break
			}
		}
	}
}

// RunTrafficParallel serves the same schedule as RunTraffic under the
// conservative-window protocol, running every shard's engine on its own
// goroutine with at most slots of them simulating at once. Output is
// byte-identical at any slots value (1 included) and under either sim
// engine; see the package comment at the top of this file for the
// argument. slots only caps host CPU concurrency — it is clamped to
// [1, shards] and is safe to size best-effort from a shared
// sim.WorkerBudget.
//
// The fleet-level tracer attached via AttachTracer (if any) is swapped
// for per-shard children during the run and re-adopted in shard order,
// so span IDs are deterministic; the original tracer and the shards'
// replica routers are restored before returning.
func RunTrafficParallel(a *Array, tc TrafficConfig, slots int) (*TrafficResult, error) {
	classes, err := checkTraffic(&tc)
	if err != nil {
		return nil, err
	}
	if slots < 1 {
		slots = 1
	}
	if slots > len(a.Shards) {
		slots = len(a.Shards)
	}
	window := ReplicaLookahead()
	reqs := buildSchedule(a, &tc, classes)

	ex := &trafficExec{
		a:       a,
		tc:      &tc,
		classes: classes,
		window:  window,
		rz:      sim.NewRendezvous(len(a.Shards)),
		slots:   sim.NewWorkerBudget(slots),
	}
	for i := range a.Shards {
		ex.shards = append(ex.shards, &execShard{
			id:   i,
			res:  newTrafficResult(a, &tc, classes),
			refs: map[string][]byte{},
		})
	}
	// Arrivals are monotone, so the distinct window barriers come out
	// ascending; windows nobody arrives in are skipped fleet-wide.
	lastEnd := units.Time(-1)
	for _, rq := range reqs {
		end := units.Time((int64(rq.at)/int64(window) + 1) * int64(window))
		if end != lastEnd {
			ex.ends = append(ex.ends, end)
			lastEnd = end
		}
		es := ex.shards[rq.primary]
		es.reqs = append(es.reqs, rq)
	}

	// Interpose: deferring fetchers and per-shard child tracers, both
	// restored on the way out. The fleet shares one tracer (AttachTracer),
	// so shard 0's is the point tracer to fold back into.
	shared := a.Shards[0].Sys.Tracer()
	children := make([]*trace.Tracer, len(a.Shards))
	saved := make([]core.ReplicaFetcher, len(a.Shards))
	for i, sh := range a.Shards {
		saved[i] = sh.Sys.ReplicaFetcher()
		sh.Sys.SetReplicaFetcher(&parkingFetcher{ex: ex, es: ex.shards[i]})
		if shared != nil {
			children[i] = shared.Child()
			sh.Sys.AttachTracer(children[i])
		}
	}

	var wg sync.WaitGroup
	for _, es := range ex.shards {
		wg.Add(1)
		go func(es *execShard) {
			defer wg.Done()
			ex.runShard(es)
		}(es)
	}
	wg.Wait()

	for i, sh := range a.Shards {
		sh.Sys.SetReplicaFetcher(saved[i])
		if shared != nil {
			shared.Adopt(children[i])
			sh.Sys.AttachTracer(shared)
		}
	}

	// The lowest-sequence error is the one the inline path would have
	// hit first; report it alone, exactly as RunTraffic would.
	var firstErr error
	firstSeq := -1
	for _, es := range ex.shards {
		if es.failed && (firstSeq < 0 || es.errSeq < firstSeq) {
			firstSeq, firstErr = es.errSeq, es.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Fold the per-shard partials in shard order.
	res := newTrafficResult(a, &tc, classes)
	for _, es := range ex.shards {
		p := es.res
		res.Arrivals += p.Arrivals
		res.Admitted += p.Admitted
		res.Rejected += p.Rejected
		res.Errors += p.Errors
		for i := range res.Path {
			res.Path[i] += p.Path[i]
		}
		for i := range res.ShardServed {
			res.ShardServed[i] += p.ShardServed[i]
			res.ShardArrivals[i] += p.ShardArrivals[i]
		}
		for i := range res.TenantServed {
			res.TenantServed[i] += p.TenantServed[i]
		}
		for i := range res.Classes {
			res.Classes[i].Served += p.Classes[i].Served
			res.Classes[i].Violations += p.Classes[i].Violations
		}
		if p.Horizon > res.Horizon {
			res.Horizon = p.Horizon
		}
	}
	res.FairnessTenants = jainPositive(res.TenantServed)
	res.FairnessShards = jain(res.ShardServed)
	res.Windows = len(ex.ends)
	res.Rounds = ex.rounds
	res.DeferredFetches = ex.deferred
	res.EarlyFetches = ex.early
	return res, nil
}
