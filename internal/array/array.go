// Package array scales the single simulated Morpheus-SSD testbed to a
// sharded serving fleet: N systems (one core.System — host, driver,
// SSD, event engine — per shard) behind consistent-hash object placement
// with k-way replication. The layout feeds the runtime's two-stage
// degraded mode: when a shard's media loses an object, the replica
// re-fetch is routed to the shard actually holding a surviving copy and
// charged against that shard's queues and clock (core.ReplicaFetcher).
//
// Everything is deterministic: placement is a pure hash of object names,
// shards share one virtual time axis (each engine starts at zero), and
// the traffic engine (engine.go) issues arrivals from seeded generators
// (arrival.go) — so array experiments keep the repository's byte-identity
// contract at any -parallel setting and under either sim engine.
package array

import (
	"fmt"
	"sort"

	"morpheus/internal/core"
	"morpheus/internal/flash"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// Config shapes the fleet.
type Config struct {
	// Shards is the number of Morpheus-SSD systems (>= 1).
	Shards int
	// Replicas is how many distinct shards hold each object (1 = no
	// redundancy; clamped to Shards).
	Replicas int
	// VNodes is the number of virtual nodes each shard projects onto the
	// hash ring (<= 0 uses 64). More vnodes smooth placement.
	VNodes int
	// SlotLimit bounds admitted-but-unfinished requests per shard (the
	// admission-control window). <= 0 derives each shard's StorageApp
	// slot count (ssd.Config.MaxInstances).
	SlotLimit int
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards < 1 {
		return c, fmt.Errorf("array: need at least 1 shard, got %d", c.Shards)
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Replicas > c.Shards {
		c.Replicas = c.Shards
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	return c, nil
}

// Shard is one Morpheus-SSD system plus its fleet-level state.
type Shard struct {
	ID  int
	Sys *core.System
	// Down marks a shard lost to the fleet (KillShard): its media fails
	// every read, and the replica router stops offering it as a source.
	// Requests whose primary it is are still routed to it — that is
	// exactly the degraded-mode path under test.
	Down bool
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Array is the sharded fleet.
type Array struct {
	Cfg    Config
	Shards []*Shard

	ring    []ringPoint
	objects map[string][]int // memoized placement, primary first
}

// New builds the fleet, constructing each shard's system through build
// (shard index → fresh core.System) and installing the replica router on
// every one.
func New(cfg Config, build func(shard int) (*core.System, error)) (*Array, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &Array{Cfg: cfg, objects: map[string][]int{}}
	for i := 0; i < cfg.Shards; i++ {
		sys, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("array: build shard %d: %w", i, err)
		}
		sys.SetReplicaFetcher(&shardFetcher{a: a, self: i})
		a.Shards = append(a.Shards, &Shard{ID: i, Sys: sys})
	}
	a.ring = make([]ringPoint, 0, cfg.Shards*cfg.VNodes)
	for i := 0; i < cfg.Shards; i++ {
		for v := 0; v < cfg.VNodes; v++ {
			a.ring = append(a.ring, ringPoint{
				hash:  hash64(fmt.Sprintf("shard%d#%d", i, v)),
				shard: i,
			})
		}
	}
	sort.Slice(a.ring, func(i, j int) bool {
		if a.ring[i].hash != a.ring[j].hash {
			return a.ring[i].hash < a.ring[j].hash
		}
		return a.ring[i].shard < a.ring[j].shard
	})
	return a, nil
}

// hash64 is FNV-1a with a murmur-style finalizer, the placement hash. A
// fixed, dependency-free hash is part of the determinism contract:
// placement must be identical across runs, architectures, and Go
// versions. The finalizer matters: bare FNV-1a barely avalanches the
// last few bytes into the high bits, so names differing only in a
// trailing counter ("obj0007", "shard2#41") would cluster into narrow
// ring arcs and defeat the consistent hashing entirely.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Place returns the Replicas distinct shards holding name, primary
// first: the first ring point at or clockwise past the object's hash,
// then the next points owned by shards not yet in the set.
func (a *Array) Place(name string) []int {
	if p, ok := a.objects[name]; ok {
		return p
	}
	h := hash64(name)
	start := sort.Search(len(a.ring), func(i int) bool { return a.ring[i].hash >= h })
	holders := make([]int, 0, a.Cfg.Replicas)
	seen := make([]bool, a.Cfg.Shards)
	for i := 0; len(holders) < a.Cfg.Replicas && i < len(a.ring); i++ {
		p := a.ring[(start+i)%len(a.ring)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		holders = append(holders, p.shard)
	}
	a.objects[name] = holders
	return holders
}

// StageObject writes data under name onto every holder shard (setup
// time; call ResetTimers before measuring).
func (a *Array) StageObject(name string, data []byte) error {
	for _, id := range a.Place(name) {
		if _, err := a.Shards[id].Sys.WriteFile(name, data); err != nil {
			return fmt.Errorf("array: stage %q on shard %d: %w", name, id, err)
		}
	}
	return nil
}

// Holders returns the shards holding name (an alias of Place for
// callers reading the layout rather than routing through it).
func (a *Array) Holders(name string) []int { return a.Place(name) }

// KillShard takes a whole shard out: every subsequent read on its flash
// is an uncorrectable media error, and the replica router stops using it
// as a source. Placement is unchanged — requests keep arriving at the
// dead primary and must be served through the degraded path.
func (a *Array) KillShard(id int) {
	sh := a.Shards[id]
	sh.Down = true
	sh.Sys.SSD.Flash.SetFaultModel(flash.FaultModel{
		UncorrectablePerM: 1_000_000,
		Seed:              uint64(id) + 1,
	})
}

// ResetTimers zeroes every shard's timing state and statistics — the
// boundary between staging and measurement, and what makes a fleet
// reusable across experiment points without stale ledger intervals or
// event-pool handles leaking into the next run.
func (a *Array) ResetTimers() {
	for _, sh := range a.Shards {
		sh.Sys.ResetTimers()
	}
}

// AttachTracer wires one shared tracer into every shard, so an array
// run's spans land on a single causally-ordered timeline.
func (a *Array) AttachTracer(t *trace.Tracer) {
	for _, sh := range a.Shards {
		sh.Sys.AttachTracer(t)
	}
}

// shardFetcher routes shard self's degraded-mode replica re-fetches to
// the first live holder of the object, in placement order. The read runs
// on the holder's system (core.System.ReadRaw), so its driver, flash
// channels, and clock are the ones charged.
type shardFetcher struct {
	a    *Array
	self int
}

func (f *shardFetcher) FetchReplica(ready units.Time, name string) ([]byte, units.Time, bool) {
	for _, id := range f.a.Place(name) {
		if id == f.self || f.a.Shards[id].Down {
			continue
		}
		sh := f.a.Shards[id]
		file, err := sh.Sys.OpenFile(name)
		if err != nil {
			continue
		}
		data, done, err := sh.Sys.ReadRaw(ready, file)
		if err != nil {
			continue
		}
		sh.Sys.Metrics.AddAt("array.replica.remote_reads", int64(ready), 1)
		return data, done, true
	}
	return nil, 0, false
}
