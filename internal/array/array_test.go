package array

import (
	"bytes"
	"reflect"
	"testing"

	"morpheus/internal/apps"
	"morpheus/internal/core"
	"morpheus/internal/units"
)

// testBuild is the shard constructor every test fleet uses: a GPU-less
// system with a small MDTS so bench-scale objects still split into
// multi-command trains.
func testBuild(t *testing.T) func(int) (*core.System, error) {
	t.Helper()
	return func(int) (*core.System, error) {
		cfg := core.DefaultSystemConfig()
		cfg.WithGPU = false
		cfg.SSD.MDTS = 8 * units.KiB
		return core.NewSystem(cfg)
	}
}

// testFleet builds an array, stages objects objects of the grep workload,
// and resets timers to the measurement boundary.
func testFleet(t *testing.T, shards, replicas, objects int) (*Array, *apps.App) {
	t.Helper()
	a, err := New(Config{Shards: shards, Replicas: replicas}, testBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.ByName("grep")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		data := app.Gen(16*units.KiB, 1, 1000+int64(i))
		if err := a.StageObject(ObjectName(i), data[0]); err != nil {
			t.Fatal(err)
		}
	}
	a.ResetTimers()
	return a, app
}

func testTraffic(app *apps.App, objects int, seed int64) TrafficConfig {
	return TrafficConfig{
		Tenants:  32,
		Requests: 40,
		Objects:  objects,
		Mean:     20 * units.Microsecond,
		Mix:      MixPoisson,
		Seed:     seed,
		App:      app.StorageApp(),
		Parser:   app.HostParser,
		Spec:     app.Spec,
	}
}

// TestPlacementDeterministicAndSpread: placement is a pure function of
// the name (identical across independently built fleets), returns the
// requested number of distinct shards, and spreads primaries across the
// whole fleet rather than clustering.
func TestPlacementDeterministicAndSpread(t *testing.T) {
	a, err := New(Config{Shards: 4, Replicas: 2}, testBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Shards: 4, Replicas: 2}, testBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	primaries := make([]int, 4)
	for i := 0; i < 64; i++ {
		name := ObjectName(i)
		pa, pb := a.Place(name), b.Place(name)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("%s placed at %v on one fleet, %v on another", name, pa, pb)
		}
		if len(pa) != 2 {
			t.Fatalf("%s has %d holders, want 2", name, len(pa))
		}
		if pa[0] == pa[1] {
			t.Fatalf("%s replicated onto the same shard twice: %v", name, pa)
		}
		primaries[pa[0]]++
	}
	for s, n := range primaries {
		if n == 0 {
			t.Errorf("shard %d is primary for none of 64 objects (spread %v)", s, primaries)
		}
	}
}

// TestArrivalGenerators: same (mix, mean, seed) reproduces the same
// stream; streams are nondecreasing; and every mix holds the configured
// long-run mean (the bursty/diurnal modulation must not change offered
// load).
func TestArrivalGenerators(t *testing.T) {
	const mean = 10 * units.Microsecond
	const n = 20000
	for _, mix := range []Mix{MixPoisson, MixBursty, MixDiurnal} {
		t.Run(mix.String(), func(t *testing.T) {
			g1 := NewArrivalGen(mix, mean, 42)
			g2 := NewArrivalGen(mix, mean, 42)
			g3 := NewArrivalGen(mix, mean, 43)
			var last units.Time
			var differs bool
			for i := 0; i < n; i++ {
				v1, v2, v3 := g1.Next(), g2.Next(), g3.Next()
				if v1 != v2 {
					t.Fatalf("sample %d: same seed diverged (%d vs %d)", i, v1, v2)
				}
				if v1 != v3 {
					differs = true
				}
				if v1 < last {
					t.Fatalf("sample %d: arrivals went backwards (%d after %d)", i, v1, last)
				}
				last = v1
			}
			if !differs {
				t.Error("different seeds produced identical streams")
			}
			got := float64(last) / n
			want := float64(mean)
			if got < 0.85*want || got > 1.15*want {
				t.Errorf("long-run mean interarrival = %.0f ps, want %.0f ps ±15%%", got, want)
			}
		})
	}
}

// TestKillShardServesViaReplica is the whole-shard-loss regression for
// the degraded-mode routing fix: with a shard's media gone, requests
// routed to it must be served through a replica re-fetch charged to the
// surviving holder — and with every holder gone, fail hard instead of
// silently serving from the dead shard's local staging copy.
func TestKillShardServesViaReplica(t *testing.T) {
	const objects = 8
	a, app := testFleet(t, 4, 2, objects)
	name := ObjectName(0)
	holders := a.Place(name)
	primary, backup := holders[0], holders[1]
	a.KillShard(primary)

	sh := a.Shards[primary]
	f, err := sh.Sys.OpenFile(name)
	if err != nil {
		t.Fatal(err)
	}
	invoke := func() (*core.InvokeResult, error) {
		return sh.Sys.InvokeStorageApp(0, core.InvokeOptions{
			App:  app.StorageApp(),
			File: f,
			Fallback: &core.Fallback{
				Parser: app.HostParser,
				Spec:   app.Spec,
			},
		})
	}
	inv, err := invoke()
	if err != nil {
		t.Fatalf("request to the dead primary failed outright: %v", err)
	}
	if inv.Path != core.PathReplicaFallback {
		t.Fatalf("served via %v, want %v", inv.Path, core.PathReplicaFallback)
	}
	if n := a.Shards[backup].Sys.Metrics.Counters().Get("array.replica.remote_reads"); n != 1 {
		t.Errorf("backup shard %d remote_reads = %d, want 1", backup, n)
	}
	if n := sh.Sys.Metrics.Counters().Get("array.replica.remote_reads"); n != 0 {
		t.Errorf("dead primary charged %d remote reads to itself", n)
	}

	// Kill the backup too: the whole replica set is gone, and the fleet
	// must refuse rather than quietly serve the dead primary's local copy.
	a.KillShard(backup)
	if _, err := invoke(); err == nil {
		t.Fatal("request served with every holder down")
	}
}

// TestTrafficDeterministic: two fleets, same seed, same traffic — byte
// and value identical results.
func TestTrafficDeterministic(t *testing.T) {
	const objects = 8
	a, app := testFleet(t, 3, 2, objects)
	b, _ := testFleet(t, 3, 2, objects)
	ra, err := RunTraffic(a, testTraffic(app, objects, 7))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunTraffic(b, testTraffic(app, objects, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("same seed, different outcomes:\n%+v\nvs\n%+v", ra, rb)
	}
	if ra.Admitted == 0 {
		t.Fatal("traffic admitted nothing")
	}
}

// TestArrayResetReuse is the reuse battery: running traffic, resetting
// the fleet, and running again must reproduce a fresh fleet's results
// exactly — no stale ledger intervals, event-pool handles, or metrics
// surviving the boundary. The CI race battery runs this under -race.
func TestArrayResetReuse(t *testing.T) {
	const objects = 8
	fleetJSON := func(a *Array) []byte {
		var buf bytes.Buffer
		for _, sh := range a.Shards {
			if err := sh.Sys.Metrics.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	fresh, app := testFleet(t, 3, 2, objects)
	want, err := RunTraffic(fresh, testTraffic(app, objects, 7))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := fleetJSON(fresh)

	reused, _ := testFleet(t, 3, 2, objects)
	if _, err := RunTraffic(reused, testTraffic(app, objects, 11)); err != nil {
		t.Fatal(err)
	}
	reused.ResetTimers()
	got, err := RunTraffic(reused, testTraffic(app, objects, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused fleet diverged from fresh fleet:\n%+v\nvs\n%+v", want, got)
	}
	if gotJSON := fleetJSON(reused); !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("reused fleet metrics differ from a fresh fleet's")
	}
}
