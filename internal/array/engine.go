package array

import (
	"bytes"
	"fmt"
	"math/rand"

	"morpheus/internal/core"
	"morpheus/internal/units"
)

// Class is one QoS tier of the tenant population. The per-class latency
// target feeds both the registry SLO machinery (the experiment layer
// registers one shard-qualified SLO per class per shard) and the
// engine's own exact violation counts.
type Class struct {
	Name     string
	TargetPS int64
	Budget   float64
}

// DefaultClasses is the three-tier population: 10% of tenants are gold,
// ~30% silver, the rest bronze (classOf). Targets are calibrated to the
// bench-scale serving path: a healthy MREAD train finishes well under
// the gold target, while degraded-mode requests (retry backoffs plus a
// remote replica re-fetch) blow through the gold budget.
func DefaultClasses() []Class {
	return []Class{
		{Name: "gold", TargetPS: int64(units.Millisecond), Budget: 0.05},
		{Name: "silver", TargetPS: int64(5 * units.Millisecond), Budget: 0.10},
		{Name: "bronze", TargetPS: int64(20 * units.Millisecond), Budget: 0.25},
	}
}

// classOf deterministically assigns tenant tid to a class index.
func classOf(tid, classes int) int {
	if classes <= 1 {
		return 0
	}
	switch {
	case tid%10 == 0:
		return 0
	case tid%3 == 0:
		return 1 % classes
	default:
		return 2 % classes
	}
}

// TrafficConfig shapes one open-loop run against an Array.
type TrafficConfig struct {
	// Tenants is the tenant population size; requests pick tenants from
	// a Zipf distribution over it (a few hot tenants, a long tail).
	Tenants int
	// Requests is the total number of arrivals to generate.
	Requests int
	// Objects is how many distinct staged objects the tenants map onto
	// (each tenant reads one object, hash-assigned).
	Objects int
	// Mean is the long-run mean interarrival time; Mix the process shape.
	Mean units.Duration
	Mix  Mix
	// Seed drives the arrival and tenant-pick streams.
	Seed int64
	// App/Parser/Spec are the served StorageApp and its host-fallback
	// parser (the same pair every degraded-mode caller supplies).
	App    *core.StorageApp
	Parser func() core.HostParser
	Spec   core.ParseSpec
	// Classes is the QoS tiering (nil = DefaultClasses).
	Classes []Class
}

// ClassStats is one class's exact QoS outcome.
type ClassStats struct {
	Name       string
	Served     int
	Violations int
	Budget     float64
}

// Burn is the class's error-budget burn rate: (violations/served)/budget.
func (c ClassStats) Burn() float64 {
	if c.Served == 0 || c.Budget <= 0 {
		return 0
	}
	return float64(c.Violations) / float64(c.Served) / c.Budget
}

// TrafficResult is one run's outcome.
type TrafficResult struct {
	Arrivals int
	Admitted int
	Rejected int
	Errors   int
	// Path counts served requests by core.ServePath (morpheus,
	// host-fallback, replica-fallback).
	Path [3]int
	// ShardServed / ShardArrivals index by shard ID.
	ShardServed   []int
	ShardArrivals []int
	// TenantServed indexes by tenant ID (most of a large population
	// never arrives; fairness is computed over tenants that did).
	TenantServed []int
	Classes      []ClassStats
	// FairnessTenants / FairnessShards are Jain indices over served
	// counts (1.0 = perfectly even): tenants over the tenants that were
	// actually served, shards over every shard (zeros included, so a
	// single hot shard reads as 1/N, not 1.0).
	FairnessTenants float64
	FairnessShards  float64
	// Horizon is the latest completion on the virtual clock.
	Horizon units.Time
	// Conservative-window protocol accounting, all zero on the inline
	// path (RunTraffic): Windows is the number of non-empty lookahead
	// windows the schedule spanned, Rounds the total barrier rounds
	// (>= Windows; each re-fetch wave inside a window adds one),
	// DeferredFetches the replica re-fetches served by exchange phases,
	// and EarlyFetches how many of those surfaced in less than one
	// lookahead (a non-retryable failure shortcut; delivery stays
	// deterministic, the counter just records that the backoff-budget
	// bound did not cover them).
	Windows         int
	Rounds          int
	DeferredFetches int
	EarlyFetches    int
}

// jain is Jain's fairness index over all of xs, zeros included
// (1.0 = perfectly even; 1/n = one entry hogging everything).
func jain(xs []int) float64 {
	var sum, sq float64
	for _, x := range xs {
		v := float64(x)
		sum += v
		sq += v * v
	}
	if len(xs) == 0 || sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// jainPositive restricts the index to nonzero entries — the tenant-side
// view, where most of a large Zipf population never arrives at all and
// counting absentees would drown the signal.
func jainPositive(xs []int) float64 {
	var live []int
	for _, x := range xs {
		if x > 0 {
			live = append(live, x)
		}
	}
	return jain(live)
}

// checkTraffic validates a config and resolves the class set.
func checkTraffic(tc *TrafficConfig) ([]Class, error) {
	if tc.Tenants < 1 || tc.Requests < 0 || tc.Objects < 1 {
		return nil, fmt.Errorf("array: traffic needs tenants/objects >= 1, got %d/%d", tc.Tenants, tc.Objects)
	}
	if tc.App == nil || tc.Parser == nil {
		return nil, fmt.Errorf("array: traffic needs an app and a fallback parser")
	}
	classes := tc.Classes
	if classes == nil {
		classes = DefaultClasses()
	}
	return classes, nil
}

// newTrafficResult returns a zeroed result shaped for the fleet.
func newTrafficResult(a *Array, tc *TrafficConfig, classes []Class) *TrafficResult {
	res := &TrafficResult{
		ShardServed:   make([]int, len(a.Shards)),
		ShardArrivals: make([]int, len(a.Shards)),
		TenantServed:  make([]int, tc.Tenants),
	}
	for _, c := range classes {
		res.Classes = append(res.Classes, ClassStats{Name: c.Name, Budget: c.Budget})
	}
	return res
}

// schedReq is one precomputed arrival. The whole request stream —
// arrival times, tenant picks, object names, primary routing — is a
// pure function of the TrafficConfig and the fleet layout, independent
// of how any request is served, so it can be materialized up front and
// partitioned across shard workers without changing a single value.
type schedReq struct {
	seq     int
	at      units.Time
	tid     int
	cidx    int
	name    string
	primary int
}

// buildSchedule materializes the request stream. It draws from exactly
// the generators RunTraffic always used — same arrival process, same
// independent tenant-pick stream, same Zipf shape — and pre-warms the
// placement memo for every requested object as a side effect (Place
// writes its memo map, which must not happen concurrently later).
func buildSchedule(a *Array, tc *TrafficConfig, classes []Class) []schedReq {
	gen := NewArrivalGen(tc.Mix, tc.Mean, tc.Seed)
	// The tenant-pick stream is independent of the arrival stream so
	// changing the mix never reshuffles who asked.
	picks := rand.New(rand.NewSource(tc.Seed ^ 0x7e9a2d5c))
	// s=1.2, v=8 is a Zipf with a broad head: a few dozen hot tenants
	// share most of the traffic (rather than one tenant monopolizing it),
	// so multiple shards are active and fairness columns carry signal.
	var zipf *rand.Zipf
	if tc.Tenants > 1 {
		zipf = rand.NewZipf(picks, 1.2, 8, uint64(tc.Tenants-1))
	}
	reqs := make([]schedReq, tc.Requests)
	for r := 0; r < tc.Requests; r++ {
		at := gen.Next()
		tid := 0
		if zipf != nil {
			tid = int(zipf.Uint64())
		}
		name := ObjectName(int(hash64(fmt.Sprintf("tenant%d", tid)) % uint64(tc.Objects)))
		reqs[r] = schedReq{
			seq:     r,
			at:      at,
			tid:     tid,
			cidx:    classOf(tid, len(classes)),
			name:    name,
			primary: a.Place(name)[0],
		}
	}
	return reqs
}

// serveOne issues one scheduled request against its primary shard:
// admission control against the slot window, the full serving path via
// core.InvokeStorageApp at the arrival time, the differential byte
// check, and every per-request metric. Counts land in res and serving
// state in inflight/refs — the sequential path passes fleet-wide
// instances, the shard-parallel path per-shard partials; the operations
// are identical either way, which is what keeps the two paths sharing
// one definition of "serve a request".
func serveOne(a *Array, tc *TrafficConfig, classes []Class, rq schedReq, res *TrafficResult, inflight *[]units.Time, refs map[string][]byte) error {
	sh := a.Shards[rq.primary]
	m := sh.Sys.Metrics

	res.Arrivals++
	res.ShardArrivals[rq.primary]++
	m.AddAt("array.arrivals", int64(rq.at), 1)

	// Admission control: reap completed slots, then gate on the
	// shard's StorageApp slot window.
	limit := a.Cfg.SlotLimit
	if limit <= 0 {
		limit = sh.Sys.SSD.MaxInstances()
	}
	live := (*inflight)[:0]
	for _, done := range *inflight {
		if done > rq.at {
			live = append(live, done)
		}
	}
	*inflight = live
	if len(live) >= limit {
		res.Rejected++
		m.AddAt("array.rejected", int64(rq.at), 1)
		m.SampleAt("array.shard.slots_util", int64(rq.at), 1)
		return nil
	}
	res.Admitted++
	m.SampleAt("array.shard.slots_util", int64(rq.at), float64(len(live)+1)/float64(limit))

	file, err := sh.Sys.OpenFile(rq.name)
	if err != nil {
		return fmt.Errorf("array: shard %d lost %q from its namespace: %w", rq.primary, rq.name, err)
	}
	inv, err := sh.Sys.InvokeStorageApp(rq.at, core.InvokeOptions{
		App:  tc.App,
		File: file,
		Fallback: &core.Fallback{
			Parser: tc.Parser,
			Spec:   tc.Spec,
		},
	})
	if err != nil {
		// A fully unservable request (every replica gone); counted,
		// not fatal — brownouts are an outcome, not a crash.
		res.Errors++
		m.AddAt("array.errors", int64(rq.at), 1)
		return nil
	}
	if ref, seen := refs[rq.name]; !seen {
		refs[rq.name] = inv.Out
	} else if !bytes.Equal(ref, inv.Out) {
		return fmt.Errorf("array: %q served different bytes via %s than its first response", rq.name, inv.Path)
	}
	*inflight = append(*inflight, inv.Done)
	if inv.Done > res.Horizon {
		res.Horizon = inv.Done
	}
	res.Path[inv.Path]++
	res.ShardServed[rq.primary]++
	res.TenantServed[rq.tid]++
	res.Classes[rq.cidx].Served++
	lat := int64(inv.Done.Sub(rq.at))
	if lat > classes[rq.cidx].TargetPS {
		res.Classes[rq.cidx].Violations++
	}
	m.AddAt("array.served."+inv.Path.String(), int64(inv.Done), 1)
	m.ObserveLatency("array.request.latency_ps", int64(inv.Done), lat)
	m.ObserveLatency("array.request.latency_ps."+classes[rq.cidx].Name, int64(inv.Done), lat)
	return nil
}

// RunTraffic drives one open-loop request stream against the fleet.
// Requests are issued in arrival order; each is routed to its object's
// primary shard, admission-checked against that shard's slot window, and
// served through core.InvokeStorageApp at its own arrival time (the
// shard's resource ledgers arbitrate overlap, exactly as the multi-file
// app runner does). Every served output is differentially checked
// against the first response for the same object, so a degraded path
// silently corrupting bytes fails the run rather than skewing a row.
//
// This is the inline-interleaved serving order: shards advance strictly
// in global arrival order, and a degraded request's replica re-fetch
// runs on the holder the moment it is needed. RunTrafficParallel serves
// the same schedule under the conservative-window protocol instead.
func RunTraffic(a *Array, tc TrafficConfig) (*TrafficResult, error) {
	classes, err := checkTraffic(&tc)
	if err != nil {
		return nil, err
	}
	res := newTrafficResult(a, &tc, classes)
	reqs := buildSchedule(a, &tc, classes)
	inflight := make([][]units.Time, len(a.Shards))
	refs := map[string][]byte{}
	for _, rq := range reqs {
		if err := serveOne(a, &tc, classes, rq, res, &inflight[rq.primary], refs); err != nil {
			return nil, err
		}
	}
	res.FairnessTenants = jainPositive(res.TenantServed)
	res.FairnessShards = jain(res.ShardServed)
	return res, nil
}

// ObjectName is the canonical staged-object naming scheme shared by
// staging and routing.
func ObjectName(i int) string { return fmt.Sprintf("obj%04d", i) }
