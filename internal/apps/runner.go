package apps

import (
	"fmt"

	"morpheus/internal/core"
	"morpheus/internal/gpu"
	"morpheus/internal/stats"
	"morpheus/internal/units"
	"morpheus/internal/workload"
)

// Mode selects the execution model.
type Mode int

// Execution modes.
const (
	// ModeBaseline is the conventional model of Figure 1: CPU
	// deserialization over normal READs.
	ModeBaseline Mode = iota
	// ModeMorpheus offloads deserialization to the Morpheus-SSD, objects
	// DMA'd to host DRAM (Figure 4, step 1).
	ModeMorpheus
	// ModeMorpheusP2P additionally streams objects straight to GPU device
	// memory over NVMe-P2P (Figure 4, step 5).
	ModeMorpheusP2P
	// ModeMorpheusFallback is ModeMorpheus with degraded-mode handling: if
	// the device path fails persistently (or the controller lacks the
	// Morpheus opcodes), each shard is served by the conventional host
	// parser instead of failing the run.
	ModeMorpheusFallback
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeMorpheus:
		return "morpheus"
	case ModeMorpheusP2P:
		return "morpheus+p2p"
	case ModeMorpheusFallback:
		return "morpheus+fallback"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// KernelIPC is the achieved IPC of the optimized computation kernels —
// deliberately above the deserialization loop's 1.2 ("allowing the CPU to
// devote its resources to other, higher-IPC processes").
const KernelIPC = 2.0

// GPUEfficiency is the achieved fraction of peak ALU throughput.
const GPUEfficiency = 0.5

// Report is one application run, phase by phase — the raw material for
// every figure.
type Report struct {
	App  string
	Mode Mode

	Deser     units.Duration
	OtherCPU  units.Duration
	GPUCopy   units.Duration
	GPUKernel units.Duration
	Total     units.Duration

	RawBytes units.Bytes
	ObjBytes units.Bytes

	// Deserialization-phase OS activity (Figure 10).
	DeserCtxSwitches int64
	DeserSyscalls    int64

	// Deserialization-phase component busy time (Figure 9's power model).
	DeserCPUBusy     units.Duration
	DeserSSDCoreBusy units.Duration
	DeserSSDIOBusy   units.Duration

	// Morpheus-only: measured embedded-core cycles/byte and NVMe command
	// count.
	CyclesPerByte float64
	Commands      int

	// Fallbacks counts shards the degraded host path served instead of
	// the SSD; Retries counts device-path replays across all shards.
	Fallbacks int
	Retries   int

	// Objects is the per-thread object stream (data plane), for
	// verification.
	Objects [][]byte
}

// DeserFraction is deserialization's share of total execution (Figure 2).
func (r *Report) DeserFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Deser) / float64(r.Total)
}

// Stage generates the application's input at scale (fraction of the Table
// I size) and writes one shard per thread onto the SSD. Call
// sys.ResetTimers() afterwards, before Run.
func Stage(sys *core.System, app *App, scale float64, seed int64) ([]*core.File, workload.Shards, error) {
	if scale <= 0 {
		scale = 1.0 / 256
	}
	target := units.Bytes(float64(app.PaperInputSize) * scale)
	shards := app.Gen(target, app.Threads, seed)
	files := make([]*core.File, len(shards))
	for i, sh := range shards {
		f, err := sys.WriteFile(fmt.Sprintf("%s/shard%d", app.Name, i), sh)
		if err != nil {
			return nil, nil, err
		}
		files[i] = f
	}
	return files, shards, nil
}

// Run executes the application end to end in the given mode on a freshly
// reset system. Each I/O thread runs on its own timeline; shared hardware
// arbitrates through the resource ledgers.
func Run(sys *core.System, app *App, files []*core.File, mode Mode) (*Report, error) {
	if app.UsesGPU && sys.GPU == nil {
		return nil, fmt.Errorf("apps: %s needs a GPU in the system", app.Name)
	}
	if mode == ModeMorpheusP2P {
		if !app.UsesGPU {
			return nil, fmt.Errorf("apps: %s is not a GPU application; P2P does not apply", app.Name)
		}
		if err := sys.EnableP2P(); err != nil {
			return nil, err
		}
	}
	rep := &Report{App: app.Name, Mode: mode}
	ctx0 := sys.Counters.Get(stats.CtxSwitches)
	sys0 := sys.Counters.Get(stats.Syscalls)
	cpuBusy0 := sys.Host.Cores.BusyTime()
	var ssdBusy0 units.Duration
	for _, c := range sys.SSD.Cores() {
		ssdBusy0 += c.BusyTime()
	}
	ssdIO0 := sys.SSD.Flash.ChannelBusyTime()

	// ---- Deserialization phase --------------------------------------
	var deserEnd units.Time
	switch mode {
	case ModeBaseline:
		for i, f := range files {
			res, err := sys.DeserializeConventional(0, f, app.HostParser(), app.Spec, i)
			if err != nil {
				return nil, err
			}
			if res.Done > deserEnd {
				deserEnd = res.Done
			}
			rep.RawBytes += res.RawBytes
			rep.ObjBytes += units.Bytes(len(res.Out))
			rep.Objects = append(rep.Objects, res.Out)
			rep.Commands += res.Commands
		}
	case ModeMorpheus, ModeMorpheusP2P, ModeMorpheusFallback:
		for i, f := range files {
			opt := core.InvokeOptions{App: app.StorageApp(), File: f}
			if mode == ModeMorpheusP2P {
				opt.Dest = core.Target{OnGPU: true}
			}
			if mode == ModeMorpheusFallback {
				opt.Fallback = &core.Fallback{
					Parser:  app.HostParser,
					Spec:    app.Spec,
					CoreIdx: i,
				}
			}
			res, err := sys.InvokeStorageApp(0, opt)
			if err != nil {
				return nil, err
			}
			if res.Done > deserEnd {
				deserEnd = res.Done
			}
			rep.RawBytes += f.Size
			rep.ObjBytes += units.Bytes(len(res.Out))
			rep.Objects = append(rep.Objects, res.Out)
			rep.Commands += res.Commands
			if res.Path == core.PathMorpheus {
				rep.CyclesPerByte = res.CyclesPerByte
			} else {
				rep.Fallbacks++
			}
			if res.Attempts > 1 {
				rep.Retries += res.Attempts - 1
			}
		}
	default:
		return nil, fmt.Errorf("apps: unknown mode %v", mode)
	}
	rep.Deser = units.Duration(deserEnd)
	rep.DeserCtxSwitches = sys.Counters.Get(stats.CtxSwitches) - ctx0
	rep.DeserSyscalls = sys.Counters.Get(stats.Syscalls) - sys0
	rep.DeserCPUBusy = sys.Host.Cores.BusyTime() - cpuBusy0
	var ssdBusy1 units.Duration
	for _, c := range sys.SSD.Cores() {
		ssdBusy1 += c.BusyTime()
	}
	rep.DeserSSDCoreBusy = ssdBusy1 - ssdBusy0
	rep.DeserSSDIOBusy = (sys.SSD.Flash.ChannelBusyTime() - ssdIO0) /
		units.Duration(sys.Cfg.SSD.Geometry.Channels)

	// The deserialization phase is complete and every later phase (other
	// CPU work, GPU copy, kernel) issues at ready >= deserEnd, so the
	// host-side ledgers up to deserEnd are dead weight: retire them. Under
	// a co-runner's periodic timeslices this is what keeps the core
	// ledgers — and every later backfilling insert — from growing with
	// input size.
	sys.Host.Cores.Retire(deserEnd)
	sys.Host.MemBus.Retire(deserEnd)

	// ---- Other CPU computation --------------------------------------
	t := deserEnd
	if app.OtherCPUInstrPerObjByte > 0 {
		t = sys.Host.Compute(t, app.OtherCPUInstrPerObjByte*float64(rep.ObjBytes), KernelIPC)
	}
	rep.OtherCPU = t.Sub(deserEnd)

	// ---- GPU copy (phase C' setup) ----------------------------------
	copyStart := t
	if app.UsesGPU && mode != ModeMorpheusP2P {
		addr, t2, err := sys.Host.AllocDMA(t, rep.ObjBytes)
		if err != nil {
			return nil, err
		}
		t = t2
		end, err := sys.GPU.CopyHostToDevice(t, addr, rep.ObjBytes)
		if err != nil {
			return nil, err
		}
		t = end
	}
	rep.GPUCopy = t.Sub(copyStart)

	// ---- Computation kernel ------------------------------------------
	kernelStart := t
	elem := int64(4)
	if len(app.Fields) > 0 {
		elem = int64(app.Fields[0].Width())
	}
	if app.UsesGPU {
		spec := gpu.KernelSpec{
			Name:            app.Name,
			InstrPerElement: app.KernelInstrPerObjByte * float64(elem),
			BytesPerElement: units.Bytes(elem),
			Elements:        int64(rep.ObjBytes) / elem,
			Efficiency:      GPUEfficiency,
		}
		t = sys.GPU.RunKernel(t, spec)
	} else {
		// The kernel streams the object arrays from memory.
		sys.Host.MemTraffic(kernelStart, rep.ObjBytes)
		instr := app.KernelInstrPerObjByte * float64(rep.ObjBytes)
		threads := app.Threads
		if threads < 1 {
			threads = 1
		}
		var end units.Time
		for i := 0; i < threads; i++ {
			if e := sys.Host.Compute(kernelStart, instr/float64(threads), KernelIPC); e > end {
				end = e
			}
		}
		t = end
	}
	rep.GPUKernel = t.Sub(kernelStart)
	if !app.UsesGPU {
		// For CPU apps the "kernel" bar belongs to OtherCPU in Figure 2's
		// legend; keep it separate here and let the figure formatter fold.
	}
	rep.Total = units.Duration(t)
	// Per-phase latency distributions, named after the Figure 2 legend.
	recordPhase := func(p stats.Phase, d units.Duration) {
		if d > 0 {
			sys.Metrics.ObserveLatency("phase."+string(p)+"_ps", int64(t), int64(d))
		}
	}
	recordPhase(stats.PhaseDeserialize, rep.Deser)
	recordPhase(stats.PhaseCPUCompute, rep.OtherCPU)
	recordPhase(stats.PhaseGPUCopy, rep.GPUCopy)
	recordPhase(stats.PhaseGPUKernel, rep.GPUKernel)
	return rep, nil
}

// VerifyObjects checks that two runs produced bit-identical object
// streams, thread by thread.
func VerifyObjects(a, b *Report) error {
	if len(a.Objects) != len(b.Objects) {
		return fmt.Errorf("apps: thread counts differ: %d vs %d", len(a.Objects), len(b.Objects))
	}
	for i := range a.Objects {
		if len(a.Objects[i]) != len(b.Objects[i]) {
			return fmt.Errorf("apps: thread %d object sizes differ: %d vs %d", i, len(a.Objects[i]), len(b.Objects[i]))
		}
		for j := range a.Objects[i] {
			if a.Objects[i][j] != b.Objects[i][j] {
				return fmt.Errorf("apps: thread %d objects differ at byte %d", i, j)
			}
		}
	}
	return nil
}
