package apps

import (
	"testing"

	"morpheus/internal/core"
	"morpheus/internal/flash"
	"morpheus/internal/units"
)

// TestRunnerInvariantsAcrossSuite sweeps every application in every
// applicable mode at micro scale and checks the structural invariants
// every experiment relies on: phases are non-negative and sum to the
// total, byte accounting is consistent, deserialization produces output,
// and the two Morpheus modes deliver identical objects.
// TestDifferentialAcrossSeeds is the cross-path oracle at sweep width:
// for every application and a spread of workload seeds, the StorageApp
// running on the simulated SSD must produce byte-for-byte the objects the
// host parser produces — the property the whole reproduction leans on.
func TestDifferentialAcrossSeeds(t *testing.T) {
	seeds := []int64{1, 7, 77, 20160618, 424242}
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, seed := range seeds {
				sysB := newSystem(t, app.UsesGPU, nil)
				filesB, _, err := Stage(sysB, app, testScale, seed)
				if err != nil {
					t.Fatal(err)
				}
				sysB.ResetTimers()
				base, err := Run(sysB, app, filesB, ModeBaseline)
				if err != nil {
					t.Fatalf("seed %d baseline: %v", seed, err)
				}
				sysM := newSystem(t, app.UsesGPU, nil)
				filesM, _, err := Stage(sysM, app, testScale, seed)
				if err != nil {
					t.Fatal(err)
				}
				sysM.ResetTimers()
				morph, err := Run(sysM, app, filesM, ModeMorpheus)
				if err != nil {
					t.Fatalf("seed %d morpheus: %v", seed, err)
				}
				if err := VerifyObjects(base, morph); err != nil {
					t.Fatalf("seed %d: StorageApp and host parser disagree: %v", seed, err)
				}
			}
		})
	}
}

// TestFallbackMidStreamEquivalence injects uncorrectable media faults so
// the MREAD train fails partway through, forcing InvokeStorageApp to
// abandon the device path mid-stream and re-serve shards through the host
// (and, since the local flash has lost the pages, the replica). The
// degraded runs must still produce exactly the clean baseline's objects.
func TestFallbackMidStreamEquivalence(t *testing.T) {
	totalFallbacks := 0
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			sysB := newSystem(t, app.UsesGPU, nil)
			filesB, _, err := Stage(sysB, app, testScale, 13)
			if err != nil {
				t.Fatal(err)
			}
			sysB.ResetTimers()
			base, err := Run(sysB, app, filesB, ModeBaseline)
			if err != nil {
				t.Fatal(err)
			}
			sysF := newSystem(t, app.UsesGPU, nil)
			filesF, _, err := Stage(sysF, app, testScale, 13)
			if err != nil {
				t.Fatal(err)
			}
			// Half the pages are lost: enough that every shard's train dies
			// somewhere mid-stream, while block retirement still has
			// readable neighbours to relocate.
			sysF.SSD.Flash.SetFaultModel(flash.FaultModel{UncorrectablePerM: 500_000, Seed: 13})
			sysF.ResetTimers()
			deg, err := Run(sysF, app, filesF, ModeMorpheusFallback)
			if err != nil {
				t.Fatalf("degraded run failed outright: %v", err)
			}
			if err := VerifyObjects(base, deg); err != nil {
				t.Fatalf("fallback objects differ from baseline: %v", err)
			}
			totalFallbacks += deg.Fallbacks
			if sysF.SSD.Instances() != 0 {
				t.Fatalf("degraded run leaked %d execution slots", sysF.SSD.Instances())
			}
		})
	}
	if totalFallbacks == 0 {
		t.Fatal("fault injection never forced a fallback; the scenario tests nothing")
	}
}

// TestFallbackWithoutMorpheusSupport runs the fallback mode against a
// stock controller: every shard must be served by the host path.
func TestFallbackWithoutMorpheusSupport(t *testing.T) {
	for _, app := range All()[:3] {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			sysB := newSystem(t, app.UsesGPU, nil)
			filesB, _, err := Stage(sysB, app, testScale, 5)
			if err != nil {
				t.Fatal(err)
			}
			sysB.ResetTimers()
			base, err := Run(sysB, app, filesB, ModeBaseline)
			if err != nil {
				t.Fatal(err)
			}
			sysN := newSystem(t, app.UsesGPU, func(cfg *core.SystemConfig) {
				cfg.SSD.MorpheusSupported = false
			})
			filesN, _, err := Stage(sysN, app, testScale, 5)
			if err != nil {
				t.Fatal(err)
			}
			sysN.ResetTimers()
			deg, err := Run(sysN, app, filesN, ModeMorpheusFallback)
			if err != nil {
				t.Fatal(err)
			}
			if deg.Fallbacks != len(deg.Objects) {
				t.Fatalf("expected every shard on the host path, got %d/%d", deg.Fallbacks, len(deg.Objects))
			}
			if err := VerifyObjects(base, deg); err != nil {
				t.Fatalf("degraded objects differ from baseline: %v", err)
			}
		})
	}
}

func TestRunnerInvariantsAcrossSuite(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			modes := []Mode{ModeBaseline, ModeMorpheus}
			if app.UsesGPU {
				modes = append(modes, ModeMorpheusP2P)
			}
			var morphRep *Report
			for _, mode := range modes {
				sys := newSystem(t, app.UsesGPU, nil)
				files, shards, err := Stage(sys, app, testScale, 77)
				if err != nil {
					t.Fatal(err)
				}
				sys.ResetTimers()
				rep, err := Run(sys, app, files, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if rep.Deser <= 0 || rep.Total <= 0 {
					t.Fatalf("%v: empty phases: %+v", mode, rep)
				}
				if rep.OtherCPU < 0 || rep.GPUCopy < 0 || rep.GPUKernel < 0 {
					t.Fatalf("%v: negative phase", mode)
				}
				if sum := rep.Deser + rep.OtherCPU + rep.GPUCopy + rep.GPUKernel; sum != rep.Total {
					t.Fatalf("%v: phases %v != total %v", mode, sum, rep.Total)
				}
				if rep.RawBytes != shards.TotalSize() {
					t.Fatalf("%v: raw bytes %v != staged %v", mode, rep.RawBytes, shards.TotalSize())
				}
				if rep.ObjBytes == 0 {
					t.Fatalf("%v: no objects produced", mode)
				}
				var objTotal units.Bytes
				for _, o := range rep.Objects {
					objTotal += units.Bytes(len(o))
				}
				if objTotal != rep.ObjBytes {
					t.Fatalf("%v: object accounting %v != %v", mode, objTotal, rep.ObjBytes)
				}
				if !app.UsesGPU && (rep.GPUCopy != 0 || mode == ModeBaseline && rep.GPUKernel == 0) {
					// CPU apps: no copy phase; the "kernel" runs on the CPU.
					if rep.GPUCopy != 0 {
						t.Fatalf("%v: CPU app has a GPU copy phase", mode)
					}
				}
				if mode == ModeMorpheus {
					morphRep = rep
					if rep.CyclesPerByte <= 0 {
						t.Fatalf("morpheus run lost its cycles/byte measurement")
					}
				}
				if mode == ModeMorpheusP2P {
					if err := VerifyObjects(morphRep, rep); err != nil {
						t.Fatalf("P2P objects differ from host-DRAM objects: %v", err)
					}
					if rep.GPUCopy != 0 {
						t.Fatal("P2P mode must have no GPU copy phase")
					}
				}
			}
		})
	}
}
