package apps

import (
	"testing"

	"morpheus/internal/units"
)

// TestRunnerInvariantsAcrossSuite sweeps every application in every
// applicable mode at micro scale and checks the structural invariants
// every experiment relies on: phases are non-negative and sum to the
// total, byte accounting is consistent, deserialization produces output,
// and the two Morpheus modes deliver identical objects.
func TestRunnerInvariantsAcrossSuite(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			modes := []Mode{ModeBaseline, ModeMorpheus}
			if app.UsesGPU {
				modes = append(modes, ModeMorpheusP2P)
			}
			var morphRep *Report
			for _, mode := range modes {
				sys := newSystem(t, app.UsesGPU, nil)
				files, shards, err := Stage(sys, app, testScale, 77)
				if err != nil {
					t.Fatal(err)
				}
				sys.ResetTimers()
				rep, err := Run(sys, app, files, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if rep.Deser <= 0 || rep.Total <= 0 {
					t.Fatalf("%v: empty phases: %+v", mode, rep)
				}
				if rep.OtherCPU < 0 || rep.GPUCopy < 0 || rep.GPUKernel < 0 {
					t.Fatalf("%v: negative phase", mode)
				}
				if sum := rep.Deser + rep.OtherCPU + rep.GPUCopy + rep.GPUKernel; sum != rep.Total {
					t.Fatalf("%v: phases %v != total %v", mode, sum, rep.Total)
				}
				if rep.RawBytes != shards.TotalSize() {
					t.Fatalf("%v: raw bytes %v != staged %v", mode, rep.RawBytes, shards.TotalSize())
				}
				if rep.ObjBytes == 0 {
					t.Fatalf("%v: no objects produced", mode)
				}
				var objTotal units.Bytes
				for _, o := range rep.Objects {
					objTotal += units.Bytes(len(o))
				}
				if objTotal != rep.ObjBytes {
					t.Fatalf("%v: object accounting %v != %v", mode, objTotal, rep.ObjBytes)
				}
				if !app.UsesGPU && (rep.GPUCopy != 0 || mode == ModeBaseline && rep.GPUKernel == 0) {
					// CPU apps: no copy phase; the "kernel" runs on the CPU.
					if rep.GPUCopy != 0 {
						t.Fatalf("%v: CPU app has a GPU copy phase", mode)
					}
				}
				if mode == ModeMorpheus {
					morphRep = rep
					if rep.CyclesPerByte <= 0 {
						t.Fatalf("morpheus run lost its cycles/byte measurement")
					}
				}
				if mode == ModeMorpheusP2P {
					if err := VerifyObjects(morphRep, rep); err != nil {
						t.Fatalf("P2P objects differ from host-DRAM objects: %v", err)
					}
					if rep.GPUCopy != 0 {
						t.Fatal("P2P mode must have no GPU copy phase")
					}
				}
			}
		})
	}
}
