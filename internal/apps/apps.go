// Package apps implements the ten benchmark applications of Table I:
// PageRank and Grep from BigDataBench (MPI), BFS, Gaussian, HybridSort,
// Kmeans, LUD and NN from Rodinia (CUDA), SpMV, plus WordCount standing in
// for the Table I row lost to OCR in the supplied paper text (flagged in
// DESIGN.md). Each application has a text-deserialization phase — a
// MorphC StorageApp and the bit-identical host parser — and a calibrated
// computation kernel (CPU/MPI or GPU/CUDA cost model).
package apps

import (
	"fmt"

	"morpheus/internal/core"
	"morpheus/internal/serial"
	"morpheus/internal/ssd"
	"morpheus/internal/units"
	"morpheus/internal/workload"
)

// App describes one benchmark application.
type App struct {
	Name     string
	Suite    string // "BigDataBench", "Rodinia", "N/A"
	Parallel string // "MPI", "CUDA", "N/A"
	// PaperInputSize is the Table I input size; Gen scales it.
	PaperInputSize units.Bytes
	// Threads is the number of I/O (and MPI rank) threads.
	Threads int
	// UsesGPU marks CUDA applications.
	UsesGPU bool

	// Fields is the record token layout (for documentation and float
	// fraction computation).
	Fields []serial.FieldKind

	// StorageSrc/Entry is the MorphC StorageApp replacing the host
	// deserialization code.
	StorageSrc string
	Entry      string

	// Spec is the host parse-cost parameterization: the float-text byte
	// fraction and this application's OS-overhead factor.
	Spec core.ParseSpec

	// KernelInstrPerObjByte calibrates the computation kernel (dynamic
	// instructions per object byte; executed on the GPU for CUDA apps,
	// spread across Threads CPU cores otherwise).
	KernelInstrPerObjByte float64
	// OtherCPUInstrPerObjByte calibrates the residual host work (result
	// collection, setup) present in every bar of Figure 2.
	OtherCPUInstrPerObjByte float64

	// Gen produces the input shards for a target total size.
	Gen func(target units.Bytes, shards int, seed int64) workload.Shards
}

// storageApp builds the core.StorageApp (compiled MorphC + native
// continuation) for this application.
func (a *App) StorageApp() *core.StorageApp {
	fields := a.Fields
	return &core.StorageApp{
		Name:       a.Name,
		Source:     a.StorageSrc,
		EntryPoint: a.Entry,
		NativeFactory: func() ssd.NativeFunc {
			if len(fields) == 1 {
				p := serial.TokenParser{Kind: fields[0]}
				return func(chunk []byte, final bool, args []int64) []byte {
					return p.Parse(chunk, final)
				}
			}
			p := serial.RecordParser{Fields: fields}
			return func(chunk []byte, final bool, args []int64) []byte {
				return p.Parse(chunk, final)
			}
		},
	}
}

// HostParser builds the conventional-path deserializer (same output bytes
// as the StorageApp).
func (a *App) HostParser() core.HostParser {
	if len(a.Fields) == 1 {
		p := serial.TokenParser{Kind: a.Fields[0]}
		return func(chunk []byte, final bool) []byte { return p.Parse(chunk, final) }
	}
	p := serial.RecordParser{Fields: a.Fields}
	return func(chunk []byte, final bool) []byte { return p.Parse(chunk, final) }
}

// deserIntSrc is the Figure 7 StorageApp: ASCII integer tokens to a
// binary int32 array. The paper's StorageApps "create exactly the same
// data structures that the computational aspects of these applications
// consume" — so applications whose kernels hold 32-bit elements use this
// variant.
const deserIntSrc = `
// inputapplet deserializes ASCII integer tokens into an int32 array,
// transliterated from Figure 7 of the paper.
StorageApp int inputapplet(ms_stream stream) {
	int v;
	int count = 0;
	while (ms_scanf(stream, "%d", &v) == 1) {
		ms_emit_i32(v);
		count = count + 1;
	}
	ms_memcpy();
	return count;
}
`

// deserInt64Src is the 64-bit variant for applications whose kernels
// consume long/size_t-sized elements (the BigDataBench MPI codes and the
// double-ready matrix kernels).
const deserInt64Src = `
// inputapplet64 deserializes ASCII integer tokens into an int64 array.
StorageApp int inputapplet64(ms_stream stream) {
	int v;
	int count = 0;
	while (ms_scanf(stream, "%d", &v) == 1) {
		ms_emit_i64(v);
		count = count + 1;
	}
	ms_memcpy();
	return count;
}
`

// deserTripleSrc is the SpMV StorageApp: "row col value" records where
// value is floating-point text — the case the missing FPU hurts.
const deserTripleSrc = `
// spmvapplet deserializes sparse-matrix triples; the %f scan runs on
// software-emulated floating point (no FPU on the embedded cores).
StorageApp int spmvapplet(ms_stream stream) {
	int r;
	int c;
	float v;
	int n = 0;
	while (ms_scanf(stream, "%d", &r) == 1) {
		ms_scanf(stream, "%d", &c);
		ms_scanf(stream, "%f", &v);
		ms_emit_i32(r);
		ms_emit_i32(c);
		ms_emit_f32(v);
		n = n + 1;
	}
	ms_memcpy();
	return n;
}
`

func intFields() []serial.FieldKind   { return []serial.FieldKind{serial.FieldInt32} }
func int64Fields() []serial.FieldKind { return []serial.FieldKind{serial.FieldInt64} }

// All returns the benchmark suite in Table I order. The OSFactor spread
// reflects the per-application file-access patterns (many small buffered
// reads in Grep/WordCount vs large streaming reads in LUD/Gaussian); the
// kernel constants are calibrated so the baseline execution-time profile
// reproduces Figure 2 (deserialization ≈ 64% of execution on average).
func All() []*App {
	return []*App{
		{
			Name: "pagerank", Suite: "BigDataBench", Parallel: "MPI",
			PaperInputSize:          3686 * units.MiB,
			Threads:                 4,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 9.0},
			KernelInstrPerObjByte:   16.8,
			OtherCPUInstrPerObjByte: 1,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				edges := int64(target) / 18 // "u v\n" with 8-digit ids is 18 bytes
				return workload.EdgeList(edges/8+2, edges, shards, seed)
			},
		},
		{
			Name: "grep", Suite: "BigDataBench", Parallel: "MPI",
			PaperInputSize:          620 * units.MiB,
			Threads:                 4,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 12.8},
			KernelInstrPerObjByte:   8.3,
			OtherCPUInstrPerObjByte: 0.5,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				tokens := int64(target) / 9
				return workload.DictionaryText(tokens, 200000, 16, shards, seed)
			},
		},
		{
			Name: "wordcount", Suite: "BigDataBench", Parallel: "MPI",
			PaperInputSize:          1 * units.GiB,
			Threads:                 4,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 10.6},
			KernelInstrPerObjByte:   11.3,
			OtherCPUInstrPerObjByte: 0.75,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				tokens := int64(target) / 9
				return workload.DictionaryText(tokens, 500000, 12, shards, seed+1)
			},
		},
		{
			Name: "bfs", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 2591 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  intFields(),
			StorageSrc:              deserIntSrc,
			Spec:                    core.ParseSpec{OSFactor: 8.7},
			KernelInstrPerObjByte:   5720,
			OtherCPUInstrPerObjByte: 4,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				edges := int64(target) / 18
				return workload.EdgeList(edges/10+2, edges, shards, seed+2)
			},
		},
		{
			Name: "gaussian", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 1597 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 7.3},
			KernelInstrPerObjByte:   3725,
			OtherCPUInstrPerObjByte: 1.5,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				cols := int64(2048)
				rows := int64(target) / (cols * 10)
				if rows < 4 {
					rows = 4
				}
				return workload.DenseMatrix(rows, cols, 99999999, shards, seed+3)
			},
		},
		{
			Name: "hybridsort", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 3215 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 10.9},
			KernelInstrPerObjByte:   2820,
			OtherCPUInstrPerObjByte: 1,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				n := int64(target) / 11
				return workload.IntArray(n, 1<<30, 8, shards, seed+4)
			},
		},
		{
			Name: "kmeans", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 1331 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 8.1},
			KernelInstrPerObjByte:   5050,
			OtherCPUInstrPerObjByte: 1.5,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				dim := 16
				points := int64(target) / int64(dim*10)
				return workload.Points(points, dim, 99999999, shards, seed+5)
			},
		},
		{
			Name: "lud", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 2478 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 7.0},
			KernelInstrPerObjByte:   4145,
			OtherCPUInstrPerObjByte: 1.5,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				cols := int64(1024)
				rows := int64(target) / (cols * 10)
				if rows < 4 {
					rows = 4
				}
				return workload.DenseMatrix(rows, cols, 99999999, shards, seed+6)
			},
		},
		{
			Name: "nn", Suite: "Rodinia", Parallel: "CUDA",
			PaperInputSize: 1679 * units.MiB,
			Threads:        1, UsesGPU: true,
			Fields:                  int64Fields(),
			StorageSrc:              deserInt64Src,
			Spec:                    core.ParseSpec{OSFactor: 9.6},
			KernelInstrPerObjByte:   1740,
			OtherCPUInstrPerObjByte: 1,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				dim := 4
				points := int64(target) / int64(dim*10)
				return workload.Points(points, dim, 99999999, shards, seed+7)
			},
		},
		{
			Name: "spmv", Suite: "N/A", Parallel: "N/A",
			PaperInputSize: 110 * units.MiB,
			Threads:        1,
			Fields:         []serial.FieldKind{serial.FieldInt32, serial.FieldInt32, serial.FieldFloat32},
			StorageSrc:     deserTripleSrc,
			// 33% of tokens are floats; by bytes, float text dominates.
			Spec:                    core.ParseSpec{FloatFrac: 0.35, OSFactor: 8.6},
			KernelInstrPerObjByte:   40,
			OtherCPUInstrPerObjByte: 2,
			Gen: func(target units.Bytes, shards int, seed int64) workload.Shards {
				nnz := int64(target) / 28
				return workload.SparseTriples(nnz/16+4, nnz/16+4, nnz, shards, seed+8)
			},
		},
	}
}

// ByName returns one application from the suite.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}
