package apps

import (
	"bytes"
	"testing"

	"morpheus/internal/core"
	"morpheus/internal/mvm"
	"morpheus/internal/units"
)

// testScale keeps inputs small: ~1/2048 of the Table I sizes.
const testScale = 1.0 / 2048

func newSystem(t *testing.T, withGPU bool, mutate func(*core.SystemConfig)) *core.System {
	t.Helper()
	cfg := core.DefaultSystemConfig()
	cfg.WithGPU = withGPU
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSuiteInventory(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("suite has %d applications, want 10 (Table I)", len(all))
	}
	names := map[string]bool{}
	gpuApps := 0
	for _, a := range all {
		if names[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		if a.PaperInputSize <= 0 || a.Threads <= 0 {
			t.Fatalf("%s: bad sizing", a.Name)
		}
		if a.UsesGPU {
			gpuApps++
			if a.Parallel != "CUDA" {
				t.Fatalf("%s: GPU app must be CUDA", a.Name)
			}
		}
		if a.StorageSrc == "" || len(a.Fields) == 0 {
			t.Fatalf("%s: missing StorageApp or field layout", a.Name)
		}
	}
	if gpuApps != 6 {
		t.Fatalf("GPU apps = %d, want 6 (Rodinia)", gpuApps)
	}
	for _, want := range []string{"pagerank", "grep", "bfs", "gaussian", "hybridsort", "kmeans", "lud", "nn", "spmv"} {
		if !names[want] {
			t.Fatalf("missing Table I application %q", want)
		}
	}
	if _, err := ByName("pagerank"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app must error")
	}
}

// TestStorageAppMatchesHostParser interprets every application's MorphC
// StorageApp on the MVM (exact mode) over a real generated input and
// requires bit-identical output to the host parser — the central
// correctness claim ("StorageApps create exactly the same data structures
// that the computational aspects of these applications consume").
func TestStorageAppMatchesHostParser(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			shard := app.Gen(24*units.KiB, 1, 99)[0]
			prog, err := app.StorageApp().Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			vm, err := mvm.New(prog, mvm.DefaultConfig(), mvm.DefaultCostModel())
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Feed(shard, true); err != nil {
				t.Fatal(err)
			}
			var vmOut []byte
			for {
				st := vm.Run()
				if st == mvm.StateOutputFull || st == mvm.StateFlushRequested {
					vmOut = append(vmOut, vm.DrainOutput()...)
					continue
				}
				if st == mvm.StateHalted {
					vmOut = append(vmOut, vm.DrainOutput()...)
					break
				}
				t.Fatalf("vm state %v: %v", st, vm.TrapErr())
			}
			hostOut := app.HostParser()(shard, true)
			if !bytes.Equal(vmOut, hostOut) {
				t.Fatalf("StorageApp output (%d bytes) != host parser output (%d bytes)", len(vmOut), len(hostOut))
			}
			// And the native continuation equals both.
			nativeOut := app.StorageApp().NativeFactory()(shard, true, nil)
			if !bytes.Equal(nativeOut, hostOut) {
				t.Fatalf("native continuation diverges from host parser")
			}
		})
	}
}

func TestBaselineVsMorpheusObjects(t *testing.T) {
	for _, name := range []string{"pagerank", "spmv", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sysB := newSystem(t, app.UsesGPU, nil)
			filesB, _, err := Stage(sysB, app, testScale, 7)
			if err != nil {
				t.Fatal(err)
			}
			sysB.ResetTimers()
			base, err := Run(sysB, app, filesB, ModeBaseline)
			if err != nil {
				t.Fatal(err)
			}

			sysM := newSystem(t, app.UsesGPU, nil)
			filesM, _, err := Stage(sysM, app, testScale, 7)
			if err != nil {
				t.Fatal(err)
			}
			sysM.ResetTimers()
			morph, err := Run(sysM, app, filesM, ModeMorpheus)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyObjects(base, morph); err != nil {
				t.Fatal(err)
			}
			if base.RawBytes != morph.RawBytes {
				t.Fatalf("raw bytes differ: %v vs %v", base.RawBytes, morph.RawBytes)
			}
			// SpMV's gain is ~1.07x at paper scale (softfloat), which fixed
			// per-invocation costs erase at this micro test scale — the
			// speedup shape is asserted at bench scale in internal/exp.
			if name != "spmv" && morph.Deser >= base.Deser {
				t.Errorf("%s: morpheus deser %v not faster than baseline %v", name, morph.Deser, base.Deser)
			}
		})
	}
}

func TestGPUAppPhases(t *testing.T) {
	app, err := ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, true, nil)
	files, _, err := Stage(sys, app, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTimers()
	rep, err := Run(sys, app, files, ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUKernel <= 0 || rep.GPUCopy <= 0 {
		t.Fatalf("GPU phases missing: copy=%v kernel=%v", rep.GPUCopy, rep.GPUKernel)
	}
	if rep.Total != rep.Deser+rep.OtherCPU+rep.GPUCopy+rep.GPUKernel {
		t.Fatalf("phases don't sum: %v vs %v", rep.Total, rep.Deser+rep.OtherCPU+rep.GPUCopy+rep.GPUKernel)
	}
	if f := rep.DeserFraction(); f <= 0 || f >= 1 {
		t.Fatalf("deser fraction = %v", f)
	}
}

func TestP2PSkipsCopy(t *testing.T) {
	app, err := ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, true, nil)
	files, _, err := Stage(sys, app, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTimers()
	rep, err := Run(sys, app, files, ModeMorpheusP2P)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUCopy != 0 {
		t.Fatalf("P2P run still copied: %v", rep.GPUCopy)
	}
}

func TestP2PRejectedForCPUApp(t *testing.T) {
	app, err := ByName("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, true, nil)
	files, _, err := Stage(sys, app, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetTimers()
	if _, err := Run(sys, app, files, ModeMorpheusP2P); err == nil {
		t.Fatal("P2P must be rejected for non-GPU applications")
	}
}

func TestGPUAppNeedsGPU(t *testing.T) {
	app, err := ByName("lud")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, false, nil)
	files, _, err := Stage(sys, app, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sys, app, files, ModeBaseline); err == nil {
		t.Fatal("CUDA app without a GPU must fail")
	}
}

func TestStageShardsPerThread(t *testing.T) {
	app, err := ByName("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, false, nil)
	files, shards, err := Stage(sys, app, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != app.Threads || len(shards) != app.Threads {
		t.Fatalf("shards = %d, want %d", len(files), app.Threads)
	}
	for i, f := range files {
		if f.Size != units.Bytes(len(shards[i])) {
			t.Fatalf("file %d size mismatch", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeBaseline.String() != "baseline" || ModeMorpheus.String() != "morpheus" ||
		ModeMorpheusP2P.String() != "morpheus+p2p" {
		t.Fatal("mode names")
	}
}
