// The event-core benchmark suite: steady-state scheduler churn (a pending
// window of events, each firing one replacement) timed under the
// hierarchical time wheel and the reference binary heap.
//
//	go test -bench 'BenchmarkSimEvents' -run '^$' .
//
// BenchmarkSimEventsSuite additionally proves the two schedulers
// fire-order identical on the same script, measures events/sec and
// allocs/op over a million-event run, and — when MORPHEUS_BENCH_SIM_OUT
// names a file — writes a BENCH_sim.json record for CI to archive,
// mirroring BENCH_vm.json. The wheel's contract is >= 2x the heap's
// events/sec on the million-event microbench with zero steady-state
// allocations per event.
package morpheus

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"morpheus/internal/sim"
	"morpheus/internal/units"
)

// simChurn is the benchmark workload: `window` events stay pending, and
// every fired event schedules one replacement at a pseudo-random offset
// spanning several wheel levels. After construction the pool and buckets
// are warm, so the steady state allocates nothing.
type simChurn struct {
	eng  *sim.Engine
	rng  uint64
	left int
	fn   func(units.Time)
}

// delta is a xorshift64 offset in [0, 2^18) ps: dense enough that level-0
// slots collect neighbours, wide enough that placements span levels 0-3
// and pops exercise the cascade.
func (c *simChurn) delta() units.Duration {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return units.Duration(c.rng % (1 << 18))
}

func newSimChurn(kind sim.EngineKind, window int) *simChurn {
	c := &simChurn{eng: sim.NewEngineKind(sim.NewClock(), kind), rng: 0x9E3779B97F4A7C15}
	c.fn = func(now units.Time) {
		if c.left > 0 {
			c.left--
			c.eng.Schedule(now.Add(c.delta()), c.fn)
		}
	}
	for i := 0; i < window; i++ {
		c.eng.Schedule(c.eng.Clock().Now().Add(c.delta()), c.fn)
	}
	// Warm pass: cycle every event through the pool twice so block arena,
	// free list, and bucket capacities reach steady state before timing.
	c.fire(2 * window)
	return c
}

// fire drives n steady-state event firings (each one schedules a
// replacement, keeping the pending window full).
func (c *simChurn) fire(n int) {
	c.left += n
	for i := 0; i < n; i++ {
		c.eng.Step()
	}
}

// BenchmarkSimEvents reports standard per-scheduler numbers: ns per fired
// event and allocs/op at two pending-window sizes.
func BenchmarkSimEvents(b *testing.B) {
	for _, kind := range []sim.EngineKind{sim.EngineHeap, sim.EngineWheel} {
		for _, window := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("%s/window=%d", kind, window), func(b *testing.B) {
				c := newSimChurn(kind, window)
				b.ReportAllocs()
				b.ResetTimer()
				c.fire(b.N)
			})
		}
	}
}

// simFireHash replays a fixed churn script and folds every fire time into
// a rolling hash: two schedulers that diverge in fire order (time or
// FIFO-within-time) produce different hashes.
func simFireHash(kind sim.EngineKind, events int) uint64 {
	eng := sim.NewEngineKind(sim.NewClock(), kind)
	var hash uint64 = 14695981039346656037
	rng := uint64(20160618)
	var fn func(units.Time)
	left := events
	fn = func(now units.Time) {
		hash = (hash ^ uint64(now)) * 1099511628211
		if left > 0 {
			left--
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			// Mix boundary-hugging and wide deltas, including past-horizon
			// jumps, so the hash covers cascade and overflow behavior.
			d := rng % (1 << 20)
			if rng%97 == 0 {
				d = rng % (1 << 34)
			}
			eng.Schedule(now.Add(units.Duration(d)), fn)
		}
	}
	for i := 0; i < 512; i++ {
		fn(0)
	}
	for eng.Step() {
	}
	return hash*31 + uint64(eng.Fired())
}

// simWorkloadResult is one row of the BENCH_sim.json record.
type simWorkloadResult struct {
	Name              string  `json:"name"`
	Events            int64   `json:"events"`         // fired per measurement
	PendingWindow     int     `json:"pending_window"` // events kept in flight
	HeapNS            int64   `json:"heap_ns"`        // total wall clock, heap
	WheelNS           int64   `json:"wheel_ns"`       // total wall clock, wheel
	HeapEventsPerSec  float64 `json:"heap_events_per_sec"`
	WheelEventsPerSec float64 `json:"wheel_events_per_sec"`
	HeapAllocsPerOp   float64 `json:"heap_allocs_per_op"`
	WheelAllocsPerOp  float64 `json:"wheel_allocs_per_op"`
	Speedup           float64 `json:"speedup"` // heap_ns / wheel_ns
}

// simBenchRecord is the BENCH_sim.json schema (documented in
// EXPERIMENTS.md), mirroring BENCH_vm.json.
type simBenchRecord struct {
	NumCPU             int                 `json:"num_cpu"`
	Workloads          []simWorkloadResult `json:"workloads"`
	GeomeanSpeedup     float64             `json:"geomean_speedup"`
	FireOrderIdentical bool                `json:"fire_order_identical"`
}

// timeSimChurn measures one million-event-class churn run, returning wall
// clock and heap allocations per fired event.
func timeSimChurn(kind sim.EngineKind, window, events int) (time.Duration, float64) {
	c := newSimChurn(kind, window)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	c.fire(events)
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return dur, float64(m1.Mallocs-m0.Mallocs) / float64(events)
}

// BenchmarkSimEventsSuite runs the differential fire-order check and the
// timed heap-vs-wheel comparison, publishes the wheel speedup, and writes
// the optional BENCH_sim.json record.
func BenchmarkSimEventsSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := simBenchRecord{NumCPU: runtime.NumCPU()}
		wh := simFireHash(sim.EngineWheel, 200_000)
		hh := simFireHash(sim.EngineHeap, 200_000)
		rec.FireOrderIdentical = wh == hh
		if !rec.FireOrderIdentical {
			b.Errorf("fire-order divergence: wheel hash %x, heap hash %x", wh, hh)
		}
		logGeo := 0.0
		for _, w := range []struct {
			name   string
			window int
			events int
		}{
			{"churn-small", 1 << 10, 1_000_000},
			{"churn-large", 1 << 16, 1_000_000},
		} {
			heapNS, heapAllocs := timeSimChurn(sim.EngineHeap, w.window, w.events)
			wheelNS, wheelAllocs := timeSimChurn(sim.EngineWheel, w.window, w.events)
			speedup := float64(heapNS) / float64(wheelNS)
			logGeo += math.Log(speedup)
			rec.Workloads = append(rec.Workloads, simWorkloadResult{
				Name:              w.name,
				Events:            int64(w.events),
				PendingWindow:     w.window,
				HeapNS:            heapNS.Nanoseconds(),
				WheelNS:           wheelNS.Nanoseconds(),
				HeapEventsPerSec:  float64(w.events) / heapNS.Seconds(),
				WheelEventsPerSec: float64(w.events) / wheelNS.Seconds(),
				HeapAllocsPerOp:   heapAllocs,
				WheelAllocsPerOp:  wheelAllocs,
				Speedup:           speedup,
			})
		}
		rec.GeomeanSpeedup = math.Exp(logGeo / float64(len(rec.Workloads)))
		if i > 0 {
			continue
		}
		b.ReportMetric(rec.GeomeanSpeedup, "wheel-x")
		if testing.Verbose() {
			for _, w := range rec.Workloads {
				b.Logf("%-12s %11.0f ev/s -> %11.0f ev/s  %.2fx  allocs/op %.4f -> %.4f",
					w.Name, w.HeapEventsPerSec, w.WheelEventsPerSec, w.Speedup,
					w.HeapAllocsPerOp, w.WheelAllocsPerOp)
			}
		}
		if path := os.Getenv("MORPHEUS_BENCH_SIM_OUT"); path != "" {
			data, err := json.MarshalIndent(rec, "", " ")
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
}
