module morpheus

go 1.22
