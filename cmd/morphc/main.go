// Command morphc compiles MorphC StorageApp source into an MVM device
// image, playing the device-side half of the paper's §V-B compiler.
//
// Usage:
//
//	morphc -o app.mvm app.mc          # compile to a binary image
//	morphc -S app.mc                  # print the assembly instead
//	morphc -entry inputapplet app.mc  # pick one of several StorageApps
package main

import (
	"flag"
	"fmt"
	"os"

	"morpheus/internal/morphc"
	"morpheus/internal/mvm"
)

func main() {
	var (
		out   = flag.String("o", "", "output image path (default: <src>.mvm)")
		asm   = flag.Bool("S", false, "emit MVM assembly on stdout instead of an image")
		entry = flag.String("entry", "", "StorageApp entry point when the source declares several")
		opt   = flag.Int("O", 1, "optimization level (0 = naive stack code, 1 = fold/peephole/DCE)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: morphc [-S] [-o out.mvm] [-entry name] <source.mc>")
		os.Exit(2)
	}
	srcPath := flag.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fatal(err)
	}
	level := morphc.O1
	if *opt <= 0 {
		level = morphc.O0
	}
	prog, err := morphc.CompileWithOptions(string(src), *entry, level)
	if err != nil {
		fatal(err)
	}
	if *asm {
		fmt.Print(mvm.Disassemble(prog))
		return
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = srcPath + ".mvm"
	}
	if err := os.WriteFile(dst, img, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: StorageApp %q, %d instructions, %d bytes of image, %d D-SRAM bytes static\n",
		dst, prog.Name, len(prog.Code), len(img), prog.SRAMStatic)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "morphc: %v\n", err)
	os.Exit(1)
}
