// Command morpheusbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	morpheusbench -exp all                 # everything
//	morpheusbench -exp fig8               # one experiment
//	morpheusbench -exp endtoend -scale 0.01 -seed 7
//	morpheusbench -exp fig8 -trace-out trace.json -metrics-out metrics.prom
//	morpheusbench -exp fig8 -parallel 8   # fan sweep points across 8 workers
//	morpheusbench -list                   # show the experiment index
//
// Experiments: table1, fig2, fig3, profile, fig8, fig9, fig10, traffic,
// endtoend, slowhost, multiprog, serialize, faults, cachesweep, ablation,
// all.
//
// -ssd-cache enables the SSD-DRAM deserialized-object cache (an extension
// beyond the paper) in every experiment; -ssd-cache-mb sizes it. The
// cachesweep experiment manages the cache itself and ignores both flags'
// cache fields where it must.
//
// -mvm-engine selects the embedded-core execution engine: "compiled" (the
// default closure-compiled engine with superinstruction fusion) or
// "interp" (the reference interpreter). Every simulated result — tables,
// metrics, traces — is byte-identical under either engine; only host
// wall-clock differs.
//
// -sim-engine selects the discrete-event scheduler the same way: "wheel"
// (the default hierarchical time wheel, built for million-event runs) or
// "heap" (the reference binary heap, the differential battery's oracle).
// Fire order and every simulated result are byte-identical under either.
//
// -trace-out writes a Chrome trace-event JSON (load it at
// https://ui.perfetto.dev or chrome://tracing); -metrics-out writes the
// aggregated metrics registry, as Prometheus text by default or as JSON
// when the file name ends in .json.
//
// -parallel fans an experiment's independent sweep points (one per
// application) across a worker pool. Results — tables, -metrics-out,
// -trace-out — are byte-identical at every worker count: each point runs
// on an isolated system with private observation sinks, and the harness
// folds them back in point order (see internal/exp/parallel.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"morpheus/internal/core"
	"morpheus/internal/exp"
	"morpheus/internal/mvm"
	"morpheus/internal/sim"
	"morpheus/internal/stats"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// traceCap bounds the shared tracer's memory on long runs; overflow is
// counted, not fatal.
const traceCap = 1 << 20

// writeTrace dumps the collected spans as Chrome trace-event JSON.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		return err
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "morpheusbench: trace dropped %d events past the %d-event cap\n", d, traceCap)
	}
	return f.Close()
}

// writeMetrics dumps the aggregated registry: JSON when the path says so,
// Prometheus text exposition otherwise.
func writeMetrics(path string, reg *stats.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

type experiment struct {
	name  string
	paper string
	run   func(exp.Options) ([]*exp.Table, error)
}

func experiments() []experiment {
	one := func(f func(exp.Options) (*exp.Table, error)) func(exp.Options) ([]*exp.Table, error) {
		return func(o exp.Options) ([]*exp.Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{t}, nil
		}
	}
	return []experiment{
		{"table1", "Table I — benchmark applications and inputs", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunTable1(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig2", "Figure 2 — baseline execution-time breakdown", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig2(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig3", "Figure 3 — effective bandwidth vs storage device and CPU frequency", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig3(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"profile", "§II — parse-cost profile (conversion vs OS overhead)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunProfile(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig8", "Figure 8 — deserialization speedup with Morpheus-SSD", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig8(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig9", "Figure 9 — normalized power and energy", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig9(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig10", "Figure 10 — context switches", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig10(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"traffic", "§VII-A — PCIe and memory-bus traffic", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunTraffic(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"endtoend", "§VII-B — end-to-end speedups (incl. NVMe-P2P)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunEndToEnd(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"slowhost", "slower-server sensitivity (1.2 GHz host)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunSlowHost(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"multiprog", "multiprogrammed environment (E12, extension of §III)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunMultiprog(o, 0.5)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"serialize", "MWRITE serialization (E13, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunSerialize(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"faults", "fault campaign — retries and degraded mode (E14, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFaults(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"cachesweep", "SSD object-cache sweep (E15, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunCachesweep(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"ablation", "design-choice ablations (DESIGN.md §4)", func(o exp.Options) ([]*exp.Table, error) {
			r, err := exp.RunAblation(o)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
	}
}

func main() {
	var (
		which      = flag.String("exp", "all", "experiment to run (or 'all')")
		scale      = flag.Float64("scale", 1.0/256, "input size as a fraction of the Table I sizes")
		seed       = flag.Int64("seed", 20160618, "workload generator seed")
		list       = flag.Bool("list", false, "list available experiments")
		format     = flag.String("format", "table", "output format: table or csv")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of every run to this file")
		metricsOut = flag.String("metrics-out", "", "write aggregated metrics to this file (.json for JSON, else Prometheus text)")
		parallel   = flag.Int("parallel", 0, "workers for independent sweep points (0 = NumCPU, 1 = sequential); output is byte-identical at any setting")
		ssdCache   = flag.Bool("ssd-cache", false, "enable the SSD-DRAM deserialized-object cache in every experiment (extension beyond the paper)")
		ssdCacheMB = flag.Int("ssd-cache-mb", 0, "object-cache capacity in MiB (implies -ssd-cache; 0 = the 64MiB default)")
		mvmEngine  = flag.String("mvm-engine", "compiled", "embedded-core execution engine: compiled or interp (bit-identical results; compiled is faster in host wall-clock)")
		simEngine  = flag.String("sim-engine", "wheel", "discrete-event scheduler: wheel (hierarchical time wheel, the default) or heap (reference binary heap); bit-identical results, wheel is faster in host wall-clock")
	)
	flag.Parse()
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.name, e.paper)
		}
		return
	}
	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallel = *parallel
	eng, err := mvm.ParseEngine(*mvmEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheusbench: %v\n", err)
		os.Exit(2)
	}
	opts.MVMEngine = eng
	simEng, err := sim.ParseEngineKind(*simEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheusbench: %v\n", err)
		os.Exit(2)
	}
	opts.SimEngine = simEng
	if *ssdCache || *ssdCacheMB > 0 {
		mb := *ssdCacheMB
		opts.Mutate = func(cfg *core.SystemConfig) {
			cfg.SSD.ObjectCache = true
			if mb > 0 {
				cfg.SSD.ObjectCacheSize = units.Bytes(mb) * units.MiB
			}
		}
	}
	if *traceOut != "" {
		opts.Trace = trace.New(traceCap)
	}
	if *metricsOut != "" {
		opts.Metrics = stats.NewRegistry()
	}

	run := func(e experiment) {
		fmt.Printf("running %s (%s)...\n", e.name, e.paper)
		tables, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				t.WriteCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
	}
	if *which == "all" {
		for _, e := range exps {
			run(e)
		}
	} else {
		for _, name := range strings.Split(*which, ",") {
			found := false
			for _, e := range exps {
				if e.name == name {
					run(e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "morpheusbench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: trace-out: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, opts.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: metrics-out: %v\n", err)
			os.Exit(1)
		}
	}
}
