// Command morpheusbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	morpheusbench -exp all                 # everything
//	morpheusbench -exp fig8               # one experiment
//	morpheusbench -exp endtoend -scale 0.01 -seed 7
//	morpheusbench -exp fig8 -trace-out trace.json -metrics-out metrics.prom
//	morpheusbench -exp fig8 -parallel 8   # fan sweep points across 8 workers
//	morpheusbench -list                   # show the experiment index
//
// Experiments: table1, fig2, fig3, profile, fig8, fig9, fig10, traffic,
// endtoend, slowhost, multiprog, serialize, faults, cachesweep, serve,
// array, ablation, all.
//
// -ssd-cache enables the SSD-DRAM deserialized-object cache (an extension
// beyond the paper) in every experiment; -ssd-cache-mb sizes it. The
// cachesweep experiment manages the cache itself and ignores both flags'
// cache fields where it must.
//
// -batch-depth and -window-depth tune the batched submission front-end in
// every experiment: batch-depth MREAD commands are coalesced into one
// doorbell ring (1 = command-at-a-time) and up to window-depth commands
// stay in flight before the runtime reaps the oldest completions. The
// serve experiment (E16) sweeps both itself and overrides the flags. The
// per-command host submission cost lands in the host.submit.* metrics.
//
// The array experiment (E17) scales the testbed to a sharded fleet:
// -shards Morpheus-SSD systems behind consistent-hash placement with
// -replicas copies per object, serving an open-loop multi-tenant
// -arrival process (poisson, bursty, or diurnal, with an optional mean
// interarrival like "bursty:20us"). Left unset, E17 runs its default
// shards × replication × mix grid, ending with a whole-shard-loss point
// that proves degraded-mode replica re-fetches route to the shard
// actually holding the copy.
//
// -mvm-engine selects the embedded-core execution engine: "compiled" (the
// default closure-compiled engine with superinstruction fusion) or
// "interp" (the reference interpreter). Every simulated result — tables,
// metrics, traces — is byte-identical under either engine; only host
// wall-clock differs.
//
// -sim-engine selects the discrete-event scheduler the same way: "wheel"
// (the default hierarchical time wheel, built for million-event runs) or
// "heap" (the reference binary heap, the differential battery's oracle).
// Fire order and every simulated result are byte-identical under either.
//
// -trace-out writes a Chrome trace-event JSON (load it at
// https://ui.perfetto.dev or chrome://tracing); -metrics-out writes the
// aggregated metrics registry, as Prometheus text by default or as JSON
// when the file name ends in .json.
//
// -trace-stream (default true) streams trace events to the -trace-out
// file incrementally through an external-sort spool, so trace memory
// stays bounded on long runs; the output is byte-identical to the
// buffered path. -trace-sample enables tail sampling
// ("head=64,lat=10ms,pending=4096,keep=fallback|retry"): a
// deterministic head of events is kept plus every command tree that
// crossed the latency threshold, carried a keep-name marker, or hit a
// retry/timeout/fault/degraded path; everything else is discarded.
//
// -metrics-window enables windowed time-series collection (counters,
// latency quantiles, gauges per fixed virtual-time window);
// -timeseries-out writes the series as JSON (.json), CSV (.csv), or
// OpenMetrics text with timestamps (anything else). -slo declares a
// latency objective ("name=gold,metric=nvme.MREAD.latency_ps,
// target=2ms,budget=0.001") tracked per window; its burn rate and
// time in violation land in both artifacts. The name scopes the
// objective to one tenant (an application name, as in multiprog); ""
// or "*" applies everywhere. All of these artifacts are byte-identical
// at any -parallel setting and under either -sim-engine.
//
// cmd/morpheuscheck compares two -metrics-out JSON artifacts under
// per-metric tolerances — the CI regression gate.
//
// -parallel fans an experiment's independent sweep points (one per
// application) across a worker pool. Results — tables, -metrics-out,
// -trace-out — are byte-identical at every worker count: each point runs
// on an isolated system with private observation sinks, and the harness
// folds them back in point order (see internal/exp/parallel.go).
//
// -shard-parallel goes one level deeper: within one array (E17) point,
// each shard's event engine runs on its own goroutine, advancing in
// conservative time windows bounded by the replica-retry lookahead with
// cross-shard re-fetches exchanged serially at window barriers (see
// internal/array/parallel.go and DESIGN.md §7). Output stays
// byte-identical at any positive setting and composes with -parallel:
// both layers draw from one worker budget of max(-parallel, -shard-
// parallel) goroutines. 0 (the default) keeps the sequential inline
// serving loop.
//
// -cpuprofile and -memprofile write standard pprof profiles of the whole
// run (`go tool pprof morpheusbench cpu.pprof`); the heap profile is
// taken after a final GC so it reflects live memory, and both compose
// with every experiment and flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"morpheus/internal/core"
	"morpheus/internal/exp"
	"morpheus/internal/mvm"
	"morpheus/internal/sim"
	"morpheus/internal/stats"
	"morpheus/internal/trace"
	"morpheus/internal/units"
)

// parsePS converts a Go duration string to picoseconds (the simulator's
// native unit).
func parsePS(s string) (int64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration %q must be positive", s)
	}
	return int64(d) * 1000, nil
}

// parseSamplePolicy parses the -trace-sample spec:
// "head=N,lat=DUR,pending=N,keep=name|name". Omitted fields keep their
// zero/default values; "keep=" (empty) disables name matching.
func parseSamplePolicy(s string) (trace.SamplePolicy, error) {
	var p trace.SamplePolicy
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("trace-sample: malformed field %q (want key=value)", part)
		}
		switch kv[0] {
		case "head":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 0 {
				return p, fmt.Errorf("trace-sample: bad head %q", kv[1])
			}
			p.Head = n
		case "lat":
			ps, err := parsePS(kv[1])
			if err != nil {
				return p, fmt.Errorf("trace-sample: bad lat: %w", err)
			}
			p.Latency = units.Duration(ps)
		case "pending":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n <= 0 {
				return p, fmt.Errorf("trace-sample: bad pending %q", kv[1])
			}
			p.MaxPending = n
		case "keep":
			if kv[1] == "" {
				p.KeepNames = []string{}
			} else {
				p.KeepNames = strings.Split(kv[1], "|")
			}
		default:
			return p, fmt.Errorf("trace-sample: unknown field %q", kv[0])
		}
	}
	if !p.Enabled() {
		return p, fmt.Errorf("trace-sample: %q enables nothing (set head, lat, or keep)", s)
	}
	return p, nil
}

// traceCap bounds the shared tracer's memory on long runs; overflow is
// counted, not fatal.
const traceCap = 1 << 20

// writeTrace dumps the collected spans as Chrome trace-event JSON.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		return err
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "morpheusbench: trace dropped %d events past the %d-event cap\n", d, traceCap)
	}
	return f.Close()
}

// writeSeries dumps the windowed time series: JSON or CSV when the path
// says so, OpenMetrics text exposition (with window-end timestamps)
// otherwise.
func writeSeries(path string, reg *stats.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json"):
		err = reg.WriteSeriesJSON(f)
	case strings.HasSuffix(path, ".csv"):
		err = reg.WriteSeriesCSV(f)
	default:
		err = reg.WriteSeriesOpenMetrics(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeMetrics dumps the aggregated registry: JSON when the path says so,
// Prometheus text exposition otherwise.
func writeMetrics(path string, reg *stats.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

type experiment struct {
	name  string
	paper string
	run   func(exp.Options) ([]*exp.Table, error)
}

// arraySweep carries the -shards/-replicas/-arrival selections into the
// array experiment; zero values run the E17 default grid.
var arraySweep exp.ArraySweep

func experiments() []experiment {
	one := func(f func(exp.Options) (*exp.Table, error)) func(exp.Options) ([]*exp.Table, error) {
		return func(o exp.Options) ([]*exp.Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{t}, nil
		}
	}
	return []experiment{
		{"table1", "Table I — benchmark applications and inputs", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunTable1(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig2", "Figure 2 — baseline execution-time breakdown", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig2(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig3", "Figure 3 — effective bandwidth vs storage device and CPU frequency", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig3(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"profile", "§II — parse-cost profile (conversion vs OS overhead)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunProfile(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig8", "Figure 8 — deserialization speedup with Morpheus-SSD", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig8(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig9", "Figure 9 — normalized power and energy", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig9(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"fig10", "Figure 10 — context switches", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFig10(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"traffic", "§VII-A — PCIe and memory-bus traffic", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunTraffic(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"endtoend", "§VII-B — end-to-end speedups (incl. NVMe-P2P)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunEndToEnd(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"slowhost", "slower-server sensitivity (1.2 GHz host)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunSlowHost(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"multiprog", "multiprogrammed environment (E12, extension of §III)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunMultiprog(o, 0.5)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"serialize", "MWRITE serialization (E13, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunSerialize(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"faults", "fault campaign — retries and degraded mode (E14, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunFaults(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"cachesweep", "SSD object-cache sweep (E15, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunCachesweep(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"serve", "batched submission sweep (E16, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunServe(o)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"array", "sharded array serving sweep (E17, extension)", one(func(o exp.Options) (*exp.Table, error) {
			r, err := exp.RunArray(o, arraySweep)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})},
		{"ablation", "design-choice ablations (DESIGN.md §4)", func(o exp.Options) ([]*exp.Table, error) {
			r, err := exp.RunAblation(o)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
	}
}

func main() {
	var (
		which       = flag.String("exp", "all", "experiment to run (or 'all')")
		scale       = flag.Float64("scale", 1.0/256, "input size as a fraction of the Table I sizes")
		seed        = flag.Int64("seed", 20160618, "workload generator seed")
		list        = flag.Bool("list", false, "list available experiments")
		format      = flag.String("format", "table", "output format: table or csv")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of every run to this file")
		metricsOut  = flag.String("metrics-out", "", "write aggregated metrics to this file (.json for JSON, else Prometheus text)")
		parallel    = flag.Int("parallel", 0, "workers for independent sweep points (0 = NumCPU, 1 = sequential); output is byte-identical at any setting")
		shardPar    = flag.Int("shard-parallel", 0, "array experiment: run each point's shards on up to this many goroutines via the conservative-window executor (0 = sequential inline loop); output is byte-identical at any positive setting")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile (taken after a final GC) to this file")
		ssdCache    = flag.Bool("ssd-cache", false, "enable the SSD-DRAM deserialized-object cache in every experiment (extension beyond the paper)")
		ssdCacheMB  = flag.Int("ssd-cache-mb", 0, "object-cache capacity in MiB (implies -ssd-cache; 0 = the 64MiB default)")
		batchDepth  = flag.Int("batch-depth", 0, "MREAD commands coalesced per doorbell ring in every experiment (1 = command-at-a-time; 0 = the config default)")
		windowDepth = flag.Int("window-depth", 0, "bound on in-flight MREAD commands in every experiment (0 = 2x batch depth)")
		mvmEngine   = flag.String("mvm-engine", "compiled", "embedded-core execution engine: compiled or interp (bit-identical results; compiled is faster in host wall-clock)")
		simEngine   = flag.String("sim-engine", "wheel", "discrete-event scheduler: wheel (hierarchical time wheel, the default) or heap (reference binary heap); bit-identical results, wheel is faster in host wall-clock")

		shards   = flag.Int("shards", 0, "array experiment: number of Morpheus-SSD shards in the fleet (0 = the E17 default grid)")
		replicas = flag.Int("replicas", 0, "array experiment: distinct shards holding each object (0 = the E17 default grid)")
		arrival  = flag.String("arrival", "", "array experiment: arrival process poisson|bursty|diurnal with optional mean interarrival, e.g. bursty:20us (empty = the E17 default grid)")

		metricsWindow = flag.String("metrics-window", "", "windowed time-series bucket width as a Go duration (e.g. 100us); enables per-window counters, latency quantiles, and gauges")
		timeseriesOut = flag.String("timeseries-out", "", "write the windowed time series to this file (.json, .csv, else OpenMetrics text); requires -metrics-window")
		traceSample   = flag.String("trace-sample", "", "tail-sample the trace: head=N,lat=DUR,pending=N,keep=name|name (requires -trace-out)")
		traceStream   = flag.Bool("trace-stream", true, "stream -trace-out events through a bounded-memory external-sort spool (byte-identical to the buffered writer)")
	)
	var slos []stats.SLOConfig
	flag.Func("slo", "latency objective name=...,metric=...,target=2ms,budget=0.001, tracked per window (repeatable; name \"\" or \"*\" = every run)", func(s string) error {
		c, err := stats.ParseSLO(s, parsePS)
		if err != nil {
			return err
		}
		slos = append(slos, c)
		return nil
	})
	flag.Parse()
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.name, e.paper)
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "morpheusbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "morpheusbench: memprofile: %v\n", err)
			}
		}()
	}
	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.ShardParallel = *shardPar
	eng, err := mvm.ParseEngine(*mvmEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheusbench: %v\n", err)
		os.Exit(2)
	}
	opts.MVMEngine = eng
	simEng, err := sim.ParseEngineKind(*simEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morpheusbench: %v\n", err)
		os.Exit(2)
	}
	opts.SimEngine = simEng
	if *ssdCache || *ssdCacheMB > 0 {
		mb := *ssdCacheMB
		opts.Mutate = func(cfg *core.SystemConfig) {
			cfg.SSD.ObjectCache = true
			if mb > 0 {
				cfg.SSD.ObjectCacheSize = units.Bytes(mb) * units.MiB
			}
		}
	}
	if *batchDepth != 0 || *windowDepth != 0 {
		prev := opts.Mutate
		b, w := *batchDepth, *windowDepth
		opts.Mutate = func(cfg *core.SystemConfig) {
			if prev != nil {
				prev(cfg)
			}
			if b != 0 {
				cfg.BatchDepth = b
			}
			if w != 0 {
				cfg.WindowDepth = w
			}
		}
	}
	if *metricsWindow != "" {
		ps, err := parsePS(*metricsWindow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: -metrics-window: %v\n", err)
			os.Exit(2)
		}
		opts.MetricsWindow = units.Duration(ps)
	}
	if *timeseriesOut != "" && opts.MetricsWindow == 0 {
		fmt.Fprintln(os.Stderr, "morpheusbench: -timeseries-out requires -metrics-window")
		os.Exit(2)
	}
	opts.SLOs = slos
	if *arrival != "" {
		if _, err := exp.ParseArrivalSpec(*arrival); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: -arrival: %v\n", err)
			os.Exit(2)
		}
	}
	arraySweep = exp.ArraySweep{Shards: *shards, Replicas: *replicas, Arrival: *arrival}
	if *traceSample != "" && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "morpheusbench: -trace-sample requires -trace-out")
		os.Exit(2)
	}
	var stream *trace.ChromeStream
	var streamFile *os.File
	if *traceOut != "" {
		opts.Trace = trace.New(traceCap)
		if *traceSample != "" {
			p, err := parseSamplePolicy(*traceSample)
			if err != nil {
				fmt.Fprintf(os.Stderr, "morpheusbench: %v\n", err)
				os.Exit(2)
			}
			opts.Trace.SetSamplePolicy(p)
		}
		if *traceStream {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "morpheusbench: trace-out: %v\n", err)
				os.Exit(1)
			}
			streamFile = f
			stream = trace.NewChromeStream(f)
			opts.Trace.SetSink(stream)
		}
	}
	if *metricsOut != "" || *timeseriesOut != "" {
		opts.Metrics = stats.NewRegistry()
	}

	run := func(e experiment) {
		fmt.Printf("running %s (%s)...\n", e.name, e.paper)
		tables, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				t.WriteCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
	}
	if *which == "all" {
		for _, e := range exps {
			run(e)
		}
	} else {
		for _, name := range strings.Split(*which, ",") {
			found := false
			for _, e := range exps {
				if e.name == name {
					run(e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "morpheusbench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
		}
	}
	if *traceOut != "" {
		if stream != nil {
			// Streaming path: merge the spools into the final file.
			err := stream.Close()
			if cerr := streamFile.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "morpheusbench: trace-out: %v\n", err)
				os.Exit(1)
			}
		} else if err := writeTrace(*traceOut, opts.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: trace-out: %v\n", err)
			os.Exit(1)
		}
		if *traceSample != "" {
			fmt.Fprintf(os.Stderr, "morpheusbench: trace sampling kept %d of %d events (%d sampled out)\n",
				opts.Trace.Kept(), opts.Trace.Recorded(), opts.Trace.SampledOut())
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, opts.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: metrics-out: %v\n", err)
			os.Exit(1)
		}
	}
	if *timeseriesOut != "" {
		if err := writeSeries(*timeseriesOut, opts.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "morpheusbench: timeseries-out: %v\n", err)
			os.Exit(1)
		}
	}
}
