// Command datagen generates the benchmark inputs of Table I as real files
// on disk — useful for inspecting what the simulated workloads look like
// or for feeding mvmrun.
//
// Usage:
//
//	datagen -app pagerank -scale 0.004 -shards 4 -o /tmp/pr
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"morpheus/internal/apps"
	"morpheus/internal/units"
)

func main() {
	var (
		appName = flag.String("app", "", "application name (see -list)")
		scale   = flag.Float64("scale", 1.0/256, "fraction of the Table I input size")
		shards  = flag.Int("shards", 0, "number of shards (default: the app's thread count)")
		outDir  = flag.String("o", ".", "output directory")
		seed    = flag.Int64("seed", 20160618, "generator seed")
		list    = flag.Bool("list", false, "list applications")
	)
	flag.Parse()
	if *list {
		for _, a := range apps.All() {
			fmt.Printf("  %-11s %-13s %-5s paper input %v, %d I/O threads\n",
				a.Name, a.Suite, a.Parallel, a.PaperInputSize, a.Threads)
		}
		return
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	n := *shards
	if n <= 0 {
		n = app.Threads
	}
	target := units.Bytes(float64(app.PaperInputSize) * *scale)
	data := app.Gen(target, n, *seed)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	var total units.Bytes
	for i, sh := range data {
		path := filepath.Join(*outDir, fmt.Sprintf("%s.shard%d.txt", app.Name, i))
		if err := os.WriteFile(path, sh, 0o644); err != nil {
			fatal(err)
		}
		total += units.Bytes(len(sh))
		fmt.Printf("wrote %s (%v)\n", path, units.Bytes(len(sh)))
	}
	fmt.Printf("%s: %v total across %d shards (target %v)\n", app.Name, total, n, target)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
