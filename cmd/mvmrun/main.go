// Command mvmrun executes a compiled StorageApp image on a standalone
// embedded-core VM — handy for debugging device code without the whole
// SSD: feed it an input file, get the emitted object bytes and the cycle
// accounting a real MINIT/MREAD train would charge.
//
// Usage:
//
//	mvmrun -in data.txt app.mc.mvm > objects.bin
//	mvmrun -src app.mc -in data.txt -args 3,5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"morpheus/internal/morphc"
	"morpheus/internal/mvm"
	"morpheus/internal/units"
)

func main() {
	var (
		srcPath = flag.String("src", "", "compile this MorphC source instead of loading an image")
		entry   = flag.String("entry", "", "StorageApp entry point")
		inPath  = flag.String("in", "", "input stream file (default: empty stream)")
		argList = flag.String("args", "", "comma-separated int64 host arguments")
		freqMHz = flag.Float64("mhz", 830, "embedded core frequency for the time estimate")
		chunk   = flag.Int("chunk", 128<<10, "feed window size in bytes (the MDTS)")
		profile = flag.Bool("profile", false, "print a per-opcode execution histogram on exit")
		engine  = flag.String("engine", "compiled", "execution engine: compiled or interp (bit-identical results)")
	)
	flag.Parse()

	var prog mvm.Program
	switch {
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		p, err := morphc.Compile(string(src), *entry)
		if err != nil {
			fatal(err)
		}
		prog = *p
	case flag.NArg() == 1:
		img, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := prog.UnmarshalBinary(img); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: mvmrun [-src app.mc | image.mvm] [-in data] [-args a,b,c]")
		os.Exit(2)
	}

	var args []int64
	if *argList != "" {
		for _, tok := range strings.Split(*argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad argument %q: %w", tok, err))
			}
			args = append(args, v)
		}
	}
	var input []byte
	if *inPath != "" {
		var err error
		input, err = os.ReadFile(*inPath)
		if err != nil {
			fatal(err)
		}
	}

	cfg := mvm.DefaultConfig()
	cfg.Profile = *profile
	eng, err := mvm.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	cfg.Engine = eng
	vm, err := mvm.New(&prog, cfg, mvm.DefaultCostModel())
	if err != nil {
		fatal(err)
	}
	vm.SetArgs(args)
	pos := 0
	var outBytes int64
	feed := func() error {
		end := pos + *chunk
		if end > len(input) {
			end = len(input)
		}
		err := vm.Feed(input[pos:end], end == len(input))
		pos = end
		return err
	}
	if err := feed(); err != nil {
		fatal(err)
	}
	for {
		switch st := vm.Run(); st {
		case mvm.StateNeedInput:
			if err := feed(); err != nil {
				fatal(err)
			}
		case mvm.StateOutputFull, mvm.StateFlushRequested:
			out := vm.DrainOutput()
			outBytes += int64(len(out))
			os.Stdout.Write(out)
		case mvm.StateHalted:
			out := vm.DrainOutput()
			outBytes += int64(len(out))
			os.Stdout.Write(out)
			freq := units.Frequency(*freqMHz) * units.MHz
			ints, floats := vm.ScanCounts()
			fmt.Fprintf(os.Stderr,
				"mvmrun: %q halted: ret=%d in=%dB out=%dB cycles=%.0f (%.2f cyc/B, %v at %v) steps=%d scans=%d int/%d float softfloat-ops=%d\n",
				prog.Name, vm.ReturnValue(), vm.Consumed(), outBytes, vm.Cycles(),
				vm.Cycles()/float64(max64(vm.Consumed(), 1)),
				freq.Cycles(vm.Cycles()), freq, vm.Steps(), ints, floats, vm.FloatOps())
			if *profile {
				fmt.Fprint(os.Stderr, vm.Profile().String())
			}
			return
		case mvm.StateTrapped:
			fatal(vm.TrapErr())
		default:
			fatal(fmt.Errorf("unexpected VM state %v", st))
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mvmrun: %v\n", err)
	os.Exit(1)
}
