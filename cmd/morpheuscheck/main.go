// Command morpheuscheck is the perf-regression gate: it compares a
// candidate metrics artifact (morpheusbench -metrics-out foo.json, or a
// -timeseries-out artifact) against a trusted baseline and exits
// nonzero when any metric moved past its tolerance.
//
// Usage:
//
//	morpheuscheck baseline.json candidate.json                # byte-exact
//	morpheuscheck -rule 'histograms.*.p99:0.05:up' \
//	              -rule 'counters.*:0' \
//	              -default-tol 0.01 baseline.json candidate.json
//
// Rules are pattern:tol[:up|down|both|off] and are checked in order —
// the first pattern matching a metric's dotted path (for example
// "histograms.nvme.MREAD.latency_ps.p99") governs it; unmatched metrics
// use -default-tol with direction both. "up" flags only increases
// (latency-like), "down" only decreases (throughput-like), "off"
// exempts the metric. A metric present in the baseline but missing from
// the candidate fails the gate; a metric only in the candidate is a
// warning.
//
// Exit status: 0 when the gate passes, 1 on regressions, 2 on usage or
// artifact-parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"morpheus/internal/gate"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "morpheuscheck: "+format+"\n", args...)
	os.Exit(code)
}

func load(path string) gate.Artifact {
	f, err := os.Open(path)
	if err != nil {
		fail(2, "%v", err)
	}
	defer f.Close()
	a, err := gate.Load(f)
	if err != nil {
		fail(2, "%s: %v", path, err)
	}
	return a
}

func main() {
	var rules []gate.Rule
	flag.Func("rule", "pattern:tol[:up|down|both|off] — per-metric tolerance, first match wins (repeatable)", func(s string) error {
		r, err := gate.ParseRule(s)
		if err != nil {
			return err
		}
		rules = append(rules, r)
		return nil
	})
	defaultTol := flag.Float64("default-tol", 0, "relative tolerance for metrics no rule matches (0 = byte-exact)")
	quiet := flag.Bool("q", false, "print only the verdict line")
	flag.Parse()
	if flag.NArg() != 2 {
		fail(2, "usage: morpheuscheck [flags] baseline.json candidate.json")
	}
	baseline := load(flag.Arg(0))
	candidate := load(flag.Arg(1))
	rep := gate.Compare(baseline, candidate, rules, *defaultTol)
	if *quiet {
		if rep.OK() {
			fmt.Printf("ok: %d metrics within tolerance\n", rep.Checked)
		} else {
			fmt.Printf("gate failed: %d regression(s) across %d checked metrics\n",
				len(rep.Regressions), rep.Checked)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
